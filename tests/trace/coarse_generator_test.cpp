#include "trace/coarse_generator.hpp"

#include <gtest/gtest.h>

#include "trace/coarse_analysis.hpp"
#include "trace/recruitment.hpp"

namespace ll::trace {
namespace {

CoarseGenConfig day_config() {
  CoarseGenConfig cfg;
  cfg.duration = 86400.0;
  return cfg;
}

TEST(CoarseGenerator, ProducesRequestedLength) {
  CoarseGenConfig cfg;
  cfg.duration = 3600.0;
  const CoarseTrace t = generate_coarse_trace(cfg, rng::Stream(1));
  EXPECT_EQ(t.size(), 1800u);
  EXPECT_DOUBLE_EQ(t.period(), 2.0);
}

TEST(CoarseGenerator, DeterministicInSeed) {
  CoarseGenConfig cfg;
  cfg.duration = 7200.0;
  const CoarseTrace a = generate_coarse_trace(cfg, rng::Stream(7));
  const CoarseTrace b = generate_coarse_trace(cfg, rng::Stream(7));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples()[i].cpu, b.samples()[i].cpu);
    EXPECT_EQ(a.samples()[i].mem_free_kb, b.samples()[i].mem_free_kb);
    EXPECT_EQ(a.samples()[i].keyboard, b.samples()[i].keyboard);
  }
}

TEST(CoarseGenerator, DifferentSeedsDiffer) {
  CoarseGenConfig cfg;
  cfg.duration = 7200.0;
  const CoarseTrace a = generate_coarse_trace(cfg, rng::Stream(1));
  const CoarseTrace b = generate_coarse_trace(cfg, rng::Stream(2));
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.samples()[i].cpu != b.samples()[i].cpu) ++diff;
  }
  EXPECT_GT(diff, a.size() / 2);
}

TEST(CoarseGenerator, SamplesWithinPhysicalBounds) {
  const CoarseTrace t = generate_coarse_trace(day_config(), rng::Stream(3));
  for (const CoarseSample& s : t.samples()) {
    EXPECT_GE(s.cpu, 0.0);
    EXPECT_LE(s.cpu, 1.0);
    EXPECT_GE(s.mem_free_kb, 0);
    EXPECT_LE(s.mem_free_kb, 65536);
  }
}

TEST(CoarseGenerator, MachinePoolIsPerMachineIndependent) {
  const auto pool = generate_machine_pool(day_config(), 3, rng::Stream(11));
  ASSERT_EQ(pool.size(), 3u);
  EXPECT_NE(pool[0].samples()[100].cpu, pool[1].samples()[100].cpu);
  // Regenerating yields identical traces (pure function of master seed).
  const auto pool2 = generate_machine_pool(day_config(), 3, rng::Stream(11));
  EXPECT_DOUBLE_EQ(pool[2].samples()[500].cpu, pool2[2].samples()[500].cpu);
}

// ---- calibration against the paper's §3.2 aggregate statistics ----------
//
// These are the numbers the cluster results actually depend on; the
// generator must land near them (tolerances are deliberately loose — the
// paper's own traces vary by site and day).

class CoarseCalibration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pool_ = new std::vector<CoarseTrace>(
        generate_machine_pool(day_config(), 8, rng::Stream(42)));
    stats_ = new CoarseStats(analyze_coarse(*pool_));
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete stats_;
    pool_ = nullptr;
    stats_ = nullptr;
  }
  static std::vector<CoarseTrace>* pool_;
  static CoarseStats* stats_;
};

std::vector<CoarseTrace>* CoarseCalibration::pool_ = nullptr;
CoarseStats* CoarseCalibration::stats_ = nullptr;

TEST_F(CoarseCalibration, NonIdleFractionNearPaper) {
  // Paper: machines are non-idle ~46% of the time.
  EXPECT_GT(stats_->nonidle_fraction, 0.36);
  EXPECT_LT(stats_->nonidle_fraction, 0.56);
}

TEST_F(CoarseCalibration, NonIdleTimeIsMostlyLowUtilization) {
  // Paper: 76% of non-idle time has CPU below 10%.
  EXPECT_GT(stats_->nonidle_below_10pct, 0.65);
  EXPECT_LT(stats_->nonidle_below_10pct, 0.87);
}

TEST_F(CoarseCalibration, IdleWindowsAreQuiet) {
  EXPECT_LT(stats_->mean_cpu_idle, 0.05);
}

TEST_F(CoarseCalibration, NonIdleUtilizationModerate) {
  // "h" must clearly exceed "l" but stay well below saturation.
  EXPECT_GT(stats_->mean_cpu_nonidle, 0.10);
  EXPECT_LT(stats_->mean_cpu_nonidle, 0.40);
}

TEST_F(CoarseCalibration, MemoryAvailabilityMatchesFigure4) {
  const MemoryAvailability mem = memory_availability(*pool_);
  // Paper: >= 14 MB free 90% of the time; >= 10 MB free 95% of the time.
  EXPECT_GT(fraction_with_at_least(mem.all_kb, 14.0 * 1024), 0.82);
  EXPECT_GT(fraction_with_at_least(mem.all_kb, 10.0 * 1024), 0.90);
  // And no dramatic idle/non-idle difference.
  const double idle14 = fraction_with_at_least(mem.idle_kb, 14.0 * 1024);
  const double nonidle14 = fraction_with_at_least(mem.nonidle_kb, 14.0 * 1024);
  EXPECT_NEAR(idle14, nonidle14, 0.25);
}

TEST_F(CoarseCalibration, ShortNonIdleEpisodesExist) {
  // The fine-grain opportunity: plenty of non-idle episodes shorter than a
  // typical migration cost (~23 s) plus linger duration.
  std::size_t short_episodes = 0;
  std::size_t total = 0;
  for (const CoarseTrace& t : *pool_) {
    for (double len : nonidle_episode_lengths(t)) {
      ++total;
      if (len <= 120.0) ++short_episodes;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(short_episodes) / static_cast<double>(total),
            0.2);
}

}  // namespace
}  // namespace ll::trace
