#include "trace/coarse_analysis.hpp"

#include <gtest/gtest.h>

namespace ll::trace {
namespace {

// Rule where a single quiet sample makes the machine idle (period 2 s).
const RecruitmentRule kInstantRule{0.1, 2.0};

CoarseTrace trace_of(std::initializer_list<CoarseSample> samples) {
  CoarseTrace t(2.0);
  for (const auto& s : samples) t.push(s);
  return t;
}

TEST(CoarseAnalysis, EmptyPool) {
  const CoarseStats s = analyze_coarse({}, kInstantRule);
  EXPECT_EQ(s.sample_count, 0u);
  EXPECT_DOUBLE_EQ(s.nonidle_fraction, 0.0);
}

TEST(CoarseAnalysis, SplitsByState) {
  auto t = trace_of({{0.02, 1000, false},   // idle
                     {0.50, 2000, false},   // non-idle (cpu)
                     {0.03, 3000, true},    // non-idle (keyboard)
                     {0.05, 4000, false}}); // idle
  const CoarseStats s = analyze_coarse({t}, kInstantRule);
  EXPECT_EQ(s.sample_count, 4u);
  EXPECT_DOUBLE_EQ(s.nonidle_fraction, 0.5);
  EXPECT_NEAR(s.mean_cpu_idle, (0.02 + 0.05) / 2, 1e-12);
  EXPECT_NEAR(s.mean_cpu_nonidle, (0.50 + 0.03) / 2, 1e-12);
  EXPECT_NEAR(s.mean_cpu_overall, (0.02 + 0.50 + 0.03 + 0.05) / 4, 1e-12);
}

TEST(CoarseAnalysis, NonIdleBelowTenPercent) {
  auto t = trace_of({{0.50, 0, false},    // non-idle, >= 10%
                     {0.03, 0, true},     // non-idle (keyboard), < 10%
                     {0.02, 0, false}});  // idle
  const CoarseStats s = analyze_coarse({t}, kInstantRule);
  EXPECT_DOUBLE_EQ(s.nonidle_below_10pct, 0.5);
}

TEST(CoarseAnalysis, EpisodeMeans) {
  auto t = trace_of({{0.5, 0, false},
                     {0.5, 0, false},
                     {0.02, 0, false},
                     {0.5, 0, false}});
  const CoarseStats s = analyze_coarse({t}, kInstantRule);
  EXPECT_DOUBLE_EQ(s.mean_nonidle_episode, 3.0);  // episodes of 4s and 2s
  EXPECT_DOUBLE_EQ(s.mean_idle_episode, 2.0);
}

TEST(CoarseAnalysis, PoolsAcrossTraces) {
  auto a = trace_of({{0.5, 0, false}});
  auto b = trace_of({{0.02, 0, false}, {0.02, 0, false}});
  const CoarseStats s = analyze_coarse({a, b}, kInstantRule);
  EXPECT_EQ(s.sample_count, 3u);
  EXPECT_NEAR(s.nonidle_fraction, 1.0 / 3.0, 1e-12);
}

TEST(MemoryAvailability, SplitsSamplesByState) {
  auto t = trace_of({{0.02, 1000, false}, {0.50, 2000, false}});
  const MemoryAvailability mem = memory_availability({t}, kInstantRule);
  ASSERT_EQ(mem.all_kb.size(), 2u);
  ASSERT_EQ(mem.idle_kb.size(), 1u);
  ASSERT_EQ(mem.nonidle_kb.size(), 1u);
  EXPECT_DOUBLE_EQ(mem.idle_kb[0], 1000.0);
  EXPECT_DOUBLE_EQ(mem.nonidle_kb[0], 2000.0);
}

TEST(MemoryAvailability, FractionWithAtLeast) {
  const std::vector<double> kb{1000, 2000, 3000, 4000};
  EXPECT_DOUBLE_EQ(fraction_with_at_least(kb, 2500), 0.5);
  EXPECT_DOUBLE_EQ(fraction_with_at_least(kb, 0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_with_at_least(kb, 5000), 0.0);
  EXPECT_DOUBLE_EQ(fraction_with_at_least(kb, 2000), 0.75);  // inclusive
  EXPECT_DOUBLE_EQ(fraction_with_at_least({}, 10), 0.0);
}

}  // namespace
}  // namespace ll::trace
