#include "trace/records.hpp"

#include <gtest/gtest.h>

namespace ll::trace {
namespace {

TEST(FineTrace, EmptyDefaults) {
  FineTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.duration(), 0.0);
  EXPECT_DOUBLE_EQ(t.utilization(), 0.0);
}

TEST(FineTrace, DurationSumsBursts) {
  FineTrace t;
  t.push(BurstKind::Idle, 1.5);
  t.push(BurstKind::Run, 0.5);
  EXPECT_DOUBLE_EQ(t.duration(), 2.0);
  EXPECT_EQ(t.size(), 2u);
}

TEST(FineTrace, UtilizationIsRunFraction) {
  FineTrace t;
  t.push(BurstKind::Idle, 3.0);
  t.push(BurstKind::Run, 1.0);
  EXPECT_DOUBLE_EQ(t.utilization(), 0.25);
}

TEST(FineTrace, RejectsNegativeDurations) {
  FineTrace t;
  EXPECT_THROW((void)(t.push(BurstKind::Run, -1.0)), std::invalid_argument);
}

TEST(CoarseTrace, RejectsBadPeriod) {
  EXPECT_THROW((void)(CoarseTrace(0.0)), std::invalid_argument);
  EXPECT_THROW((void)(CoarseTrace(-2.0)), std::invalid_argument);
}

TEST(CoarseTrace, DurationIsPeriodTimesSamples) {
  CoarseTrace t(2.0);
  t.push({0.1, 1000, false});
  t.push({0.2, 2000, true});
  EXPECT_DOUBLE_EQ(t.duration(), 4.0);
  EXPECT_EQ(t.size(), 2u);
}

TEST(CoarseTrace, IndexAtMapsTimesToWindows) {
  CoarseTrace t(2.0);
  for (int i = 0; i < 4; ++i) t.push({0.1 * i, 0, false});
  EXPECT_EQ(t.index_at(0.0), 0u);
  EXPECT_EQ(t.index_at(1.99), 0u);
  EXPECT_EQ(t.index_at(2.0), 1u);
  EXPECT_EQ(t.index_at(7.5), 3u);
}

TEST(CoarseTrace, IndexAtWrapsAround) {
  CoarseTrace t(2.0);
  for (int i = 0; i < 3; ++i) t.push({0.1 * i, 0, false});
  EXPECT_EQ(t.index_at(6.0), 0u);   // one full lap
  EXPECT_EQ(t.index_at(8.5), 1u);
  EXPECT_EQ(t.index_at(60.0), 0u);  // ten laps
}

TEST(CoarseTrace, IndexAtOnEmptyThrows) {
  CoarseTrace t(2.0);
  EXPECT_THROW((void)(t.index_at(0.0)), std::logic_error);
}

TEST(CoarseTrace, IndexAtNegativeTimeThrows) {
  CoarseTrace t(2.0);
  t.push({0.0, 0, false});
  EXPECT_THROW((void)(t.index_at(-1.0)), std::invalid_argument);
}

TEST(CoarseTrace, SampleAtReturnsWindowSample) {
  CoarseTrace t(2.0);
  t.push({0.25, 111, false});
  t.push({0.75, 222, true});
  EXPECT_DOUBLE_EQ(t.sample_at(3.0).cpu, 0.75);
  EXPECT_EQ(t.sample_at(3.0).mem_free_kb, 222);
  EXPECT_TRUE(t.sample_at(3.0).keyboard);
}

TEST(CoarseTrace, MeanCpu) {
  CoarseTrace t(2.0);
  t.push({0.2, 0, false});
  t.push({0.4, 0, false});
  EXPECT_DOUBLE_EQ(t.mean_cpu(), 0.3);
  EXPECT_DOUBLE_EQ(CoarseTrace(1.0).mean_cpu(), 0.0);
}

}  // namespace
}  // namespace ll::trace
