#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/coarse_generator.hpp"

namespace ll::trace {
namespace {

TEST(CoarseIo, RoundTripStream) {
  CoarseTrace t(2.0);
  t.push({0.25, 1234, true});
  t.push({0.0, 65536, false});
  t.push({1.0, 0, true});
  std::stringstream buf;
  save_coarse(t, buf);
  const CoarseTrace back = load_coarse(buf);
  ASSERT_EQ(back.size(), t.size());
  EXPECT_DOUBLE_EQ(back.period(), 2.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.samples()[i].cpu, t.samples()[i].cpu);
    EXPECT_EQ(back.samples()[i].mem_free_kb, t.samples()[i].mem_free_kb);
    EXPECT_EQ(back.samples()[i].keyboard, t.samples()[i].keyboard);
  }
}

TEST(CoarseIo, PreservesNonDefaultPeriod) {
  CoarseTrace t(0.5);
  t.push({0.1, 10, false});
  std::stringstream buf;
  save_coarse(t, buf);
  EXPECT_DOUBLE_EQ(load_coarse(buf).period(), 0.5);
}

TEST(CoarseIo, RoundTripFile) {
  const std::string path = ::testing::TempDir() + "/ll_coarse_io.trace";
  const CoarseGenConfig cfg{.duration = 600.0};
  const CoarseTrace t = generate_coarse_trace(cfg, rng::Stream(5));
  save_coarse(t, path);
  const CoarseTrace back = load_coarse(path);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); i += 17) {
    EXPECT_EQ(back.samples()[i].mem_free_kb, t.samples()[i].mem_free_kb);
  }
  std::remove(path.c_str());
}

TEST(CoarseIo, SkipsCommentsAndBlankLines) {
  std::stringstream buf(
      "# ll-coarse-trace v1 period=2\n"
      "0.5 1000 1\n"
      "\n"
      "# a comment\n"
      "0.1 2000 0\n");
  const CoarseTrace t = load_coarse(buf);
  EXPECT_EQ(t.size(), 2u);
}

TEST(CoarseIo, RejectsBadHeader) {
  std::stringstream buf("not a trace\n0.5 1000 1\n");
  EXPECT_THROW((void)(load_coarse(buf)), std::runtime_error);
}

TEST(CoarseIo, RejectsEmptyInput) {
  std::stringstream buf;
  EXPECT_THROW((void)(load_coarse(buf)), std::runtime_error);
}

TEST(CoarseIo, RejectsMalformedLine) {
  std::stringstream buf("# ll-coarse-trace v1 period=2\n0.5 oops 1\n");
  EXPECT_THROW((void)(load_coarse(buf)), std::runtime_error);
}

TEST(CoarseIo, RejectsBadKeyboardFlag) {
  std::stringstream buf("# ll-coarse-trace v1 period=2\n0.5 100 7\n");
  EXPECT_THROW((void)(load_coarse(buf)), std::runtime_error);
}

TEST(CoarseIo, MissingFileThrows) {
  EXPECT_THROW((void)(load_coarse("/nonexistent/xyz.trace")), std::runtime_error);
}

TEST(FineIo, RoundTrip) {
  FineTrace t;
  t.push(BurstKind::Idle, 0.0125);
  t.push(BurstKind::Run, 0.05);
  t.push(BurstKind::Idle, 1.5);
  std::stringstream buf;
  save_fine(t, buf);
  const FineTrace back = load_fine(buf);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.bursts()[0].kind, BurstKind::Idle);
  EXPECT_EQ(back.bursts()[1].kind, BurstKind::Run);
  EXPECT_DOUBLE_EQ(back.bursts()[1].duration, 0.05);
  EXPECT_DOUBLE_EQ(back.duration(), t.duration());
}

TEST(FineIo, RejectsBadHeader) {
  std::stringstream buf("garbage\nR 0.5\n");
  EXPECT_THROW((void)(load_fine(buf)), std::runtime_error);
}

TEST(FineIo, RejectsUnknownKind) {
  std::stringstream buf("# ll-fine-trace v1\nX 0.5\n");
  EXPECT_THROW((void)(load_fine(buf)), std::runtime_error);
}

TEST(FineIo, RejectsNegativeDuration) {
  std::stringstream buf("# ll-fine-trace v1\nR -0.5\n");
  EXPECT_THROW((void)(load_fine(buf)), std::runtime_error);
}

TEST(FineIo, RoundTripFile) {
  const std::string path = ::testing::TempDir() + "/ll_fine_io.trace";
  FineTrace t;
  t.push(BurstKind::Run, 0.1);
  save_fine(t, path);
  EXPECT_EQ(load_fine(path).size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ll::trace
