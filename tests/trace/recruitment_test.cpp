#include "trace/recruitment.hpp"

#include <gtest/gtest.h>

namespace ll::trace {
namespace {

CoarseTrace trace_of(std::initializer_list<CoarseSample> samples,
                     double period = 2.0) {
  CoarseTrace t(period);
  for (const auto& s : samples) t.push(s);
  return t;
}

CoarseSample quiet() { return {0.02, 32768, false}; }
CoarseSample busy_cpu() { return {0.5, 32768, false}; }
CoarseSample typing() { return {0.02, 32768, true}; }

TEST(Recruitment, AllQuietBecomesIdleAfterThreshold) {
  // quiet_seconds=60, period=2 => 30 samples needed.
  CoarseTrace t(2.0);
  for (int i = 0; i < 40; ++i) t.push(quiet());
  const auto flags = idle_flags(t);
  for (int i = 0; i < 29; ++i) EXPECT_FALSE(flags[i]) << i;
  for (int i = 29; i < 40; ++i) EXPECT_TRUE(flags[i]) << i;
}

TEST(Recruitment, KeyboardResetsQuietRun) {
  CoarseTrace t(2.0);
  for (int i = 0; i < 35; ++i) t.push(quiet());
  t.push(typing());
  for (int i = 0; i < 35; ++i) t.push(quiet());
  const auto flags = idle_flags(t);
  EXPECT_TRUE(flags[34]);
  EXPECT_FALSE(flags[35]);  // keyboard
  for (int i = 36; i < 36 + 29; ++i) EXPECT_FALSE(flags[i]) << i;
  EXPECT_TRUE(flags[65]);
}

TEST(Recruitment, CpuSpikeResetsQuietRun) {
  CoarseTrace t(2.0);
  for (int i = 0; i < 31; ++i) t.push(quiet());
  t.push(busy_cpu());
  t.push(quiet());
  const auto flags = idle_flags(t);
  EXPECT_TRUE(flags[30]);
  EXPECT_FALSE(flags[31]);
  EXPECT_FALSE(flags[32]);
}

TEST(Recruitment, ThresholdIsStrict) {
  RecruitmentRule rule;
  CoarseTrace t(2.0);
  // Exactly 10% CPU is NOT below the threshold.
  for (int i = 0; i < 40; ++i) t.push({0.10, 0, false});
  EXPECT_DOUBLE_EQ(idle_fraction(t, rule), 0.0);
  CoarseTrace t2(2.0);
  for (int i = 0; i < 40; ++i) t2.push({0.099, 0, false});
  EXPECT_GT(idle_fraction(t2, rule), 0.0);
}

TEST(Recruitment, CustomRule) {
  RecruitmentRule rule{0.5, 4.0};  // 2 samples at period 2
  auto t = trace_of({quiet(), quiet(), quiet()});
  const auto flags = idle_flags(t, rule);
  EXPECT_FALSE(flags[0]);
  EXPECT_TRUE(flags[1]);
  EXPECT_TRUE(flags[2]);
}

TEST(Recruitment, EmptyTrace) {
  CoarseTrace t(2.0);
  EXPECT_TRUE(idle_flags(t).empty());
  EXPECT_DOUBLE_EQ(idle_fraction(t), 0.0);
}

TEST(Recruitment, IdleFractionCounts) {
  RecruitmentRule rule{0.1, 2.0};  // 1 sample suffices
  auto t = trace_of({quiet(), busy_cpu(), quiet(), typing()});
  EXPECT_DOUBLE_EQ(idle_fraction(t, rule), 0.5);
}

TEST(Recruitment, EpisodeLengths) {
  RecruitmentRule rule{0.1, 2.0};
  auto t = trace_of({busy_cpu(), busy_cpu(), quiet(), busy_cpu(), quiet(), quiet()});
  const auto nonidle = nonidle_episode_lengths(t, rule);
  ASSERT_EQ(nonidle.size(), 2u);
  EXPECT_DOUBLE_EQ(nonidle[0], 4.0);
  EXPECT_DOUBLE_EQ(nonidle[1], 2.0);
  const auto idle = idle_episode_lengths(t, rule);
  ASSERT_EQ(idle.size(), 2u);
  EXPECT_DOUBLE_EQ(idle[0], 2.0);
  EXPECT_DOUBLE_EQ(idle[1], 4.0);
}

TEST(Recruitment, TrailingEpisodeIncluded) {
  RecruitmentRule rule{0.1, 2.0};
  auto t = trace_of({quiet(), busy_cpu(), busy_cpu()});
  const auto nonidle = nonidle_episode_lengths(t, rule);
  ASSERT_EQ(nonidle.size(), 1u);
  EXPECT_DOUBLE_EQ(nonidle[0], 4.0);
}

TEST(Recruitment, RecruitmentDelayExtendsNonIdleEpisodes) {
  // A 60s quiet threshold means the first minute after a busy spell still
  // counts as non-idle — the "recruitment tail" the paper exploits.
  CoarseTrace t(2.0);
  for (int i = 0; i < 40; ++i) t.push(quiet());  // becomes idle at i=29
  t.push(busy_cpu());                             // one busy window
  for (int i = 0; i < 40; ++i) t.push(quiet());
  const auto nonidle = nonidle_episode_lengths(t, {});
  // Episode: busy window + 29 quiet windows of recruitment delay.
  ASSERT_GE(nonidle.size(), 1u);
  EXPECT_DOUBLE_EQ(nonidle.back(), 2.0 * 30.0);
}

}  // namespace
}  // namespace ll::trace
