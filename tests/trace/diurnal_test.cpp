/// Structural tests of the synthetic coarse-trace generator's diurnal and
/// session behaviour — the properties the cluster experiments lean on
/// beyond the aggregate §3.2 statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "trace/coarse_analysis.hpp"
#include "trace/coarse_generator.hpp"
#include "trace/recruitment.hpp"

namespace ll::trace {
namespace {

/// Non-idle fraction of the samples within [from_hour, to_hour) of each day.
double nonidle_fraction_between(const CoarseTrace& trace, double from_hour,
                                double to_hour,
                                const RecruitmentRule& rule = {}) {
  const std::vector<bool> flags = idle_flags(trace, rule);
  std::size_t in_range = 0;
  std::size_t nonidle = 0;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    const double hour =
        std::fmod(static_cast<double>(i) * trace.period() / 3600.0, 24.0);
    if (hour >= from_hour && hour < to_hour) {
      ++in_range;
      if (!flags[i]) ++nonidle;
    }
  }
  return in_range > 0 ? static_cast<double>(nonidle) /
                            static_cast<double>(in_range)
                      : 0.0;
}

TEST(Diurnal, DaytimeBusierThanNight) {
  CoarseGenConfig cfg;
  cfg.duration = 3 * 86400.0;
  double day_sum = 0.0;
  double night_sum = 0.0;
  for (std::uint64_t m = 0; m < 6; ++m) {
    const CoarseTrace t =
        generate_coarse_trace(cfg, rng::Stream(100).fork("m", m));
    day_sum += nonidle_fraction_between(t, 9.0, 18.0);
    night_sum += nonidle_fraction_between(t, 0.0, 7.0);
  }
  EXPECT_GT(day_sum / 6.0, night_sum / 6.0 * 2.0);
  EXPECT_LT(night_sum / 6.0, 0.30);
  EXPECT_GT(day_sum / 6.0, 0.45);
}

TEST(Diurnal, StartHourShiftsThePattern) {
  // An 8-hour trace started at 09:00 covers working hours and must be far
  // busier than one started at midnight.
  CoarseGenConfig at_midnight;
  at_midnight.duration = 8 * 3600.0;
  CoarseGenConfig at_nine = at_midnight;
  at_nine.start_hour = 9.0;

  double midnight_busy = 0.0;
  double nine_busy = 0.0;
  for (std::uint64_t m = 0; m < 6; ++m) {
    midnight_busy += idle_fraction(
        generate_coarse_trace(at_midnight, rng::Stream(7).fork("a", m)));
    nine_busy += idle_fraction(
        generate_coarse_trace(at_nine, rng::Stream(7).fork("a", m)));
  }
  // idle_fraction is the complement of busy: nine-to-five traces are less idle.
  EXPECT_LT(nine_busy / 6.0, midnight_busy / 6.0 - 0.15);
}

TEST(Sessions, KeyboardActivityOnlyWhileNonIdle) {
  // Any keyboard sample must be flagged non-idle by the recruitment rule.
  CoarseGenConfig cfg;
  cfg.duration = 86400.0;
  const CoarseTrace t = generate_coarse_trace(cfg, rng::Stream(11));
  const auto flags = idle_flags(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t.samples()[i].keyboard) {
      EXPECT_FALSE(flags[i]) << "sample " << i;
    }
  }
}

TEST(Sessions, ComputeEpisodesProduceHighUtilizationRuns) {
  CoarseGenConfig cfg;
  cfg.duration = 2 * 86400.0;
  const CoarseTrace t = generate_coarse_trace(cfg, rng::Stream(12));
  // There are windows above 30% utilization (compute episodes exist)...
  std::size_t high = 0;
  for (const CoarseSample& s : t.samples()) {
    if (s.cpu >= 0.30) ++high;
  }
  EXPECT_GT(high, t.size() / 200);  // > 0.5% of time
  // ...and they cluster: the count of isolated single-window spikes is a
  // minority of all high windows (episodes have Exp(75 s) length >> 2 s).
  std::size_t isolated = 0;
  const auto& samples = t.samples();
  for (std::size_t i = 1; i + 1 < samples.size(); ++i) {
    if (samples[i].cpu >= 0.30 && samples[i - 1].cpu < 0.30 &&
        samples[i + 1].cpu < 0.30) {
      ++isolated;
    }
  }
  EXPECT_LT(isolated, high / 4);
}

TEST(Sessions, EpisodeLengthsHaveHeavyTailOfShortOnes) {
  // Linger-Longer's opportunity: many non-idle episodes end quickly. At
  // least a quarter of episodes must be shorter than 2 minutes.
  CoarseGenConfig cfg;
  cfg.duration = 2 * 86400.0;
  std::size_t short_count = 0;
  std::size_t total = 0;
  for (std::uint64_t m = 0; m < 4; ++m) {
    const CoarseTrace t =
        generate_coarse_trace(cfg, rng::Stream(13).fork("m", m));
    for (double len : nonidle_episode_lengths(t)) {
      ++total;
      if (len <= 120.0) ++short_count;
    }
  }
  ASSERT_GT(total, 20u);
  EXPECT_GT(static_cast<double>(short_count) / static_cast<double>(total),
            0.25);
}

TEST(Memory, FreeMemoryNeverNegativeNorAboveTotal) {
  CoarseGenConfig cfg;
  cfg.duration = 86400.0;
  const CoarseTrace t = generate_coarse_trace(cfg, rng::Stream(14));
  for (const CoarseSample& s : t.samples()) {
    EXPECT_GE(s.mem_free_kb, 0);
    EXPECT_LE(s.mem_free_kb, cfg.mem_total_kb);
  }
}

TEST(Memory, ComputeEpisodesConsumeMemory) {
  // Mean free memory during high-CPU windows is lower than during quiet
  // windows (episodes carry extra working set).
  CoarseGenConfig cfg;
  cfg.duration = 2 * 86400.0;
  const CoarseTrace t = generate_coarse_trace(cfg, rng::Stream(15));
  double high_free = 0.0;
  double low_free = 0.0;
  std::size_t high_n = 0;
  std::size_t low_n = 0;
  for (const CoarseSample& s : t.samples()) {
    if (s.cpu >= 0.30) {
      high_free += s.mem_free_kb;
      ++high_n;
    } else {
      low_free += s.mem_free_kb;
      ++low_n;
    }
  }
  ASSERT_GT(high_n, 0u);
  ASSERT_GT(low_n, 0u);
  EXPECT_LT(high_free / static_cast<double>(high_n),
            low_free / static_cast<double>(low_n));
}

}  // namespace
}  // namespace ll::trace
