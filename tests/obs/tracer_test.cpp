/// Flight-recorder tracer unit tests: ring wraparound and drop accounting,
/// multi-thread interleave and the merged snapshot ordering, Chrome
/// trace-event JSON well-formedness (round-tripped through util::json),
/// observer chaining, and the runner adapter's quiescent-export contract.

#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <sstream>
#include <thread>
#include <vector>

#include "des/simulation.hpp"
#include "obs/profiler.hpp"
#include "util/json.hpp"
#include "util/runner.hpp"

namespace ll::obs {
namespace {

TEST(Tracer, InterningIsStableAndIdempotent) {
  Tracer tracer;
  const std::uint32_t a = tracer.label("alpha");
  const std::uint32_t b = tracer.label("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, tracer.label("alpha"));
  const auto snap = tracer.snapshot();
  ASSERT_GT(snap.labels.size(), b);
  EXPECT_EQ(snap.labels[a], "alpha");
  EXPECT_EQ(snap.labels[b], "beta");
}

TEST(Tracer, RecordsCarryKindClocksAndArg) {
  Tracer tracer;
  const std::uint32_t l = tracer.label("l");
  tracer.instant(l, 12.5, 7);
  const std::uint64_t t0 = tracer.now_ns();
  tracer.wall_span(l, t0, 3.0, 8);
  tracer.wall_span_at(l, 100, 200, 4.0, 9);
  tracer.virtual_span(l, 10.0, 20.0, 11);
  const auto snap = tracer.snapshot();
  ASSERT_EQ(snap.records.size(), 4u);
  EXPECT_EQ(snap.recorded, 4u);
  EXPECT_EQ(snap.dropped, 0u);
  std::size_t instants = 0;
  std::size_t wall = 0;
  std::size_t virt = 0;
  for (const auto& e : snap.records) {
    switch (e.rec.kind) {
      case TraceKind::kInstant:
        ++instants;
        EXPECT_DOUBLE_EQ(e.rec.v0, 12.5);
        EXPECT_EQ(e.rec.arg, 7u);
        break;
      case TraceKind::kWallSpan:
        ++wall;
        EXPECT_GE(e.rec.t1_ns, e.rec.t0_ns);
        break;
      case TraceKind::kVirtualSpan:
        ++virt;
        EXPECT_DOUBLE_EQ(e.rec.v0, 10.0);
        EXPECT_DOUBLE_EQ(e.rec.v1, 20.0);
        EXPECT_EQ(e.rec.arg, 11u);
        break;
    }
  }
  EXPECT_EQ(instants, 1u);
  EXPECT_EQ(wall, 2u);
  EXPECT_EQ(virt, 1u);
}

TEST(Tracer, RingWrapsKeepingTheTailAndCountingDrops) {
  Tracer tracer(/*ring_capacity=*/4);
  const std::uint32_t l = tracer.label("wrap");
  for (std::uint64_t i = 0; i < 10; ++i) tracer.instant(l, 0.0, i);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto snap = tracer.snapshot();
  ASSERT_EQ(snap.records.size(), 4u);
  // A flight recorder keeps the tail, not the head: args 6..9 survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap.records[i].rec.arg, 6u + i);
  }
}

TEST(Tracer, TinyCapacityIsClampedNotRejected) {
  Tracer tracer(/*ring_capacity=*/0);
  const std::uint32_t l = tracer.label("tiny");
  tracer.instant(l, 0.0, 1);
  tracer.instant(l, 0.0, 2);
  tracer.instant(l, 0.0, 3);
  EXPECT_EQ(tracer.recorded(), 3u);
  EXPECT_GE(tracer.snapshot().records.size(), 1u);
}

TEST(Tracer, RelNsClampsPreConstructionStamps) {
  Tracer tracer;
  EXPECT_EQ(tracer.rel_ns(0), 0u);
}

TEST(Tracer, MultiThreadRingsMergeSortedWithExactCounts) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 500;
  Tracer tracer;
  std::vector<std::uint32_t> labels;
  for (std::size_t t = 0; t < kThreads; ++t) {
    labels.push_back(tracer.label("thread" + std::to_string(t)));
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, &labels, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        tracer.instant(labels[t], static_cast<double>(i), i);
      }
    });
  }
  for (auto& th : threads) th.join();  // quiescent before snapshot

  const auto snap = tracer.snapshot();
  EXPECT_EQ(snap.threads, kThreads);
  EXPECT_EQ(snap.recorded, kThreads * kPerThread);
  EXPECT_EQ(snap.dropped, 0u);
  ASSERT_EQ(snap.records.size(), kThreads * kPerThread);
  std::vector<std::uint64_t> per_label(kThreads, 0);
  for (std::size_t i = 0; i < snap.records.size(); ++i) {
    ++per_label[snap.records[i].rec.label - labels[0]];
    if (i > 0) {
      EXPECT_LE(snap.records[i - 1].rec.t0_ns, snap.records[i].rec.t0_ns)
          << "merged snapshot must be sorted by wall start";
    }
  }
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_label[t], kPerThread);
  }
}

TEST(Tracer, ChromeJsonRoundTripsThroughUtilJson) {
  Tracer tracer;
  const std::uint32_t l = tracer.label("span \"quoted\"\n");
  tracer.instant(l, 1.0, 1);
  tracer.wall_span(l, tracer.now_ns(), 2.0, 2);
  tracer.virtual_span(l, 5.0, 9.0, 3);
  std::ostringstream out;
  tracer.write_chrome_json(out);

  const auto doc = util::json::parse(out.str());
  ASSERT_EQ(doc.kind(), util::json::Kind::kObject);
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind(), util::json::Kind::kArray);
  std::size_t spans = 0;
  std::size_t instants = 0;
  std::size_t metadata = 0;
  for (const auto& ev : events->as_array()) {
    ASSERT_EQ(ev.kind(), util::json::Kind::kObject);
    ASSERT_NE(ev.find("name"), nullptr);
    ASSERT_EQ(ev.find("ph")->kind(), util::json::Kind::kString);
    ASSERT_EQ(ev.find("pid")->kind(), util::json::Kind::kNumber);
    ASSERT_EQ(ev.find("tid")->kind(), util::json::Kind::kNumber);
    const std::string& ph = ev.find("ph")->as_string();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_EQ(ev.find("ts")->kind(), util::json::Kind::kNumber);
    if (ph == "X") {
      ++spans;
      EXPECT_GE(ev.find("dur")->as_number(), 0.0);
    } else {
      ASSERT_EQ(ph, "i");
      ++instants;
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(instants, 1u);
  EXPECT_GE(metadata, 2u);  // wall + virtual process names at least
}

TEST(TracingObserver, RecordsFireSpansAndForwardsToNext) {
  Tracer tracer;
  EventLoopProfiler profiler;
  TracingObserver observer(&tracer, &profiler);
  observer.name_tag(7, "tick");

  des::Simulation sim;
  sim.set_observer(&observer);
  std::size_t fired = 0;
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(static_cast<double>(i), [&fired] { ++fired; }, 7);
  }
  sim.run();

  EXPECT_EQ(fired, 20u);
  EXPECT_EQ(profiler.fires(), 20u) << "chained observer must still see fires";
  const auto snap = tracer.snapshot();
  ASSERT_EQ(snap.records.size(), 20u);
  for (const auto& e : snap.records) {
    EXPECT_EQ(e.rec.kind, TraceKind::kWallSpan);
    EXPECT_EQ(snap.labels[e.rec.label], "fire:tick");
  }
}

TEST(TracingObserver, UnnamedTagsGetSyntheticLabels) {
  Tracer tracer;
  TracingObserver observer(&tracer);
  des::Simulation sim;
  sim.set_observer(&observer);
  sim.schedule_at(1.0, [] {}, 42);
  sim.run();
  const auto snap = tracer.snapshot();
  ASSERT_EQ(snap.records.size(), 1u);
  EXPECT_EQ(snap.labels[snap.records[0].rec.label], "fire:tag42");
}

TEST(RunnerTraceAdapter, RecordsBatchesAndSurvivesRunnerDestruction) {
  Tracer tracer;
  RunnerTraceAdapter adapter(&tracer);
  {
    util::TaskRunner runner(2);
    runner.set_observer(&adapter);
    std::atomic<int> done{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 64; ++i) {
      tasks.emplace_back([&done] { done.fetch_add(1); });
    }
    runner.run(std::move(tasks));
    EXPECT_EQ(done.load(), 64);
  }  // runner joined its workers: the tracer is quiescent now

  const auto snap = tracer.snapshot();
  bool saw_batch = false;
  for (const auto& e : snap.records) {
    if (snap.labels[e.rec.label] == "runner.batch") {
      saw_batch = true;
      EXPECT_EQ(e.rec.kind, TraceKind::kWallSpan);
      EXPECT_EQ(e.rec.arg, 64u);
    }
  }
  EXPECT_TRUE(saw_batch);
}

}  // namespace
}  // namespace ll::obs
