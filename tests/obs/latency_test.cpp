#include "obs/latency.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hpp"

namespace ll::obs {
namespace {

TEST(LatencyRecorder, EmptyRecorderReadsZero) {
  LatencyRecorder recorder;
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_DOUBLE_EQ(recorder.quantile(0.5), 0.0);
}

TEST(LatencyRecorder, QuantilesTrackLogScaleDurations) {
  LatencyRecorder recorder;
  // 90 fast (1 ms) and 10 slow (1 s) observations: p50 near 1 ms, p99 near
  // 1 s, across five decades in one recorder.
  for (int i = 0; i < 90; ++i) recorder.record(1e-3);
  for (int i = 0; i < 10; ++i) recorder.record(1.0);
  EXPECT_EQ(recorder.count(), 100u);
  EXPECT_NEAR(recorder.quantile(0.50), 1e-3, 1e-4);
  EXPECT_NEAR(recorder.quantile(0.99), 1.0, 0.1);
  EXPECT_GT(recorder.quantile(0.99), recorder.quantile(0.50));
}

TEST(LatencyRecorder, NonPositiveDurationsLandInUnderflow) {
  LatencyRecorder recorder;
  recorder.record(0.0);
  recorder.record(-1.0);
  EXPECT_EQ(recorder.count(), 2u);
  // Quantiles stay tiny rather than exploding on log(0).
  EXPECT_LT(recorder.quantile(0.5), 1e-6);
}

TEST(LatencyRecorder, ExportsCountAndQuantileGauges) {
  LatencyRecorder recorder;
  for (int i = 0; i < 100; ++i) recorder.record(2e-3);
  MetricRegistry registry;
  recorder.export_to(registry, "serve.latency");
  EXPECT_EQ(registry.counter("serve.latency.count").value(), 100u);
  const double p50 = registry.gauge("serve.latency.p50_ms").value();
  EXPECT_NEAR(p50, 2.0, 0.2);
  std::ostringstream out;
  registry.write_json(0.0, out);
  EXPECT_NE(out.str().find("serve.latency.p99_ms"), std::string::npos);
}

}  // namespace
}  // namespace ll::obs
