#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace ll::obs {
namespace {

TEST(Timeline, ZeroCapacityThrows) {
  EXPECT_THROW(Timeline(0), std::invalid_argument);
}

TEST(Timeline, RecordsInOrderBelowCapacity) {
  Timeline tl(4);
  tl.record(1.0, "job 1", "queued");
  tl.record(2.0, "job 1", "running", "node 3");
  EXPECT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl.dropped(), 0u);
  const auto recs = tl.records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_DOUBLE_EQ(recs[0].time, 1.0);
  EXPECT_EQ(recs[0].state, "queued");
  EXPECT_EQ(recs[1].detail, "node 3");
}

TEST(Timeline, WrapAroundKeepsNewestAndCountsDropped) {
  Timeline tl(3);
  for (int i = 0; i < 7; ++i) {
    tl.record(static_cast<double>(i), "e", std::to_string(i));
  }
  EXPECT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl.capacity(), 3u);
  EXPECT_EQ(tl.dropped(), 4u);
  EXPECT_EQ(tl.total_recorded(), 7u);
  const auto recs = tl.records();
  ASSERT_EQ(recs.size(), 3u);
  // Oldest-first: records 4, 5, 6 survive.
  EXPECT_EQ(recs[0].state, "4");
  EXPECT_EQ(recs[1].state, "5");
  EXPECT_EQ(recs[2].state, "6");
}

TEST(Timeline, TextDumpNotesDroppedRecords) {
  Timeline tl(2);
  tl.record(0.5, "node 0", "idle");
  tl.record(1.5, "node 0", "busy");
  tl.record(2.5, "node 0", "idle");
  std::ostringstream out;
  tl.write_text(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("busy"), std::string::npos);
  EXPECT_NE(text.find("dropped"), std::string::npos);
  // The overwritten first record must not appear.
  EXPECT_EQ(text.find("0.500000"), std::string::npos);
}

TEST(Timeline, JsonDumpParsesAndCarriesDroppedCount) {
  Timeline tl(2);
  tl.record(1.0, "job \"a\"", "queued");  // quote forces escaping
  tl.record(2.0, "job \"a\"", "running");
  tl.record(3.0, "job \"a\"", "done");
  std::ostringstream out;
  tl.write_json(out);
  const auto doc = util::json::parse(out.str());
  EXPECT_DOUBLE_EQ(doc.find("dropped")->as_number(), 1.0);
  const auto& recs = doc.find("records")->as_array();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].find("entity")->as_string(), "job \"a\"");
  EXPECT_EQ(recs[0].find("state")->as_string(), "running");
  EXPECT_EQ(recs[1].find("state")->as_string(), "done");
}

}  // namespace
}  // namespace ll::obs
