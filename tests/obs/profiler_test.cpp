#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "des/simulation.hpp"
#include "util/json.hpp"

namespace ll::obs {
namespace {

constexpr std::uint64_t kTickTag = 1;
constexpr std::uint64_t kWorkTag = 2;

TEST(EventLoopProfiler, CountsPerTagAndAuditsConservation) {
  des::Simulation sim;
  EventLoopProfiler prof;
  prof.name_tag(kTickTag, "tick");
  prof.name_tag(kWorkTag, "work");
  sim.set_observer(&prof);

  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(static_cast<double>(i), [] {}, kTickTag);
  }
  const des::EventId doomed = sim.schedule_at(10.0, [] {}, kWorkTag);
  sim.schedule_at(2.5, [] {}, kWorkTag);
  sim.cancel(doomed);
  sim.run();

  const ProfileSnapshot snap = prof.snapshot(sim, /*require_conserved=*/true);
  EXPECT_TRUE(snap.conserved);
  EXPECT_EQ(snap.total_fired, 6u);
  EXPECT_EQ(snap.engine_scheduled, 7u);
  EXPECT_EQ(snap.engine_cancelled, 1u);
  EXPECT_EQ(snap.engine_pending, 0u);
  EXPECT_DOUBLE_EQ(snap.first_fire_time, 0.0);
  EXPECT_DOUBLE_EQ(snap.last_fire_time, 4.0);

  ASSERT_EQ(snap.tags.size(), 2u);
  EXPECT_EQ(snap.tags[0].tag, kTickTag);
  EXPECT_EQ(snap.tags[0].name, "tick");
  EXPECT_EQ(snap.tags[0].scheduled, 5u);
  EXPECT_EQ(snap.tags[0].fired, 5u);
  EXPECT_EQ(snap.tags[0].cancelled, 0u);
  EXPECT_EQ(snap.tags[1].tag, kWorkTag);
  EXPECT_EQ(snap.tags[1].scheduled, 2u);
  EXPECT_EQ(snap.tags[1].fired, 1u);
  EXPECT_EQ(snap.tags[1].cancelled, 1u);
}

TEST(EventLoopProfiler, GapStatisticsTrackVirtualTimeDeltas) {
  des::Simulation sim;
  EventLoopProfiler prof;
  sim.set_observer(&prof);
  // Fires at t = 0, 1, 3, 7: gaps 1, 2, 4 binned to the later event's tag.
  sim.schedule_at(0.0, [] {}, kTickTag);
  sim.schedule_at(1.0, [] {}, kTickTag);
  sim.schedule_at(3.0, [] {}, kTickTag);
  sim.schedule_at(7.0, [] {}, kTickTag);
  sim.run();

  const ProfileSnapshot snap = prof.snapshot(sim);
  ASSERT_EQ(snap.tags.size(), 1u);
  const TagProfile& tag = snap.tags[0];
  EXPECT_DOUBLE_EQ(tag.gap_sum, 7.0);
  EXPECT_DOUBLE_EQ(tag.gap_min, 1.0);
  EXPECT_DOUBLE_EQ(tag.gap_max, 4.0);
  EXPECT_DOUBLE_EQ(tag.mean_gap(), 7.0 / 4.0);
}

TEST(EventLoopProfiler, UnnamedTagsGetSyntheticNames) {
  des::Simulation sim;
  EventLoopProfiler prof;
  sim.set_observer(&prof);
  sim.schedule_at(0.0, [] {}, 99);
  sim.run();
  const ProfileSnapshot snap = prof.snapshot(sim);
  ASSERT_EQ(snap.tags.size(), 1u);
  EXPECT_EQ(snap.tags[0].name, "tag99");
}

TEST(EventLoopProfiler, ForwardsEveryHookToChainedObserver) {
  // The profiler must be transparent: a downstream observer sees exactly
  // the schedule/fire/cancel stream it would see attached directly.
  struct Recorder final : des::SimObserver {
    std::vector<std::string> events;
    void on_schedule(double, des::EventId id, std::uint64_t) override {
      events.push_back("s" + std::to_string(id));
    }
    void on_fire(double, des::EventId id, std::uint64_t) override {
      events.push_back("f" + std::to_string(id));
    }
    void on_fire_done(double, des::EventId id, std::uint64_t) override {
      events.push_back("d" + std::to_string(id));
    }
    void on_cancel(des::EventId id, std::uint64_t) override {
      events.push_back("c" + std::to_string(id));
    }
  };

  Recorder direct;
  {
    des::Simulation sim;
    sim.set_observer(&direct);
    const auto a = sim.schedule_at(1.0, [] {});
    sim.schedule_at(2.0, [] {});
    sim.cancel(a);
    sim.run();
  }

  Recorder chained;
  EventLoopProfiler prof(&chained);
  {
    des::Simulation sim;
    sim.set_observer(&prof);
    const auto a = sim.schedule_at(1.0, [] {});
    sim.schedule_at(2.0, [] {});
    sim.cancel(a);
    sim.run();
  }

  EXPECT_EQ(direct.events, chained.events);
  EXPECT_EQ(prof.fires(), 1u);
}

TEST(EventLoopProfiler, ConservationAuditIsEngineSide) {
  // The conservation audit checks the *engine's* ledger (scheduled ==
  // fired + cancelled + pending), independent of what the profiler saw —
  // so snapshotting against a foreign-but-conserved engine stays ok while
  // the profiler totals keep reflecting only the engine it observed.
  des::Simulation observed;
  EventLoopProfiler prof;
  observed.set_observer(&prof);
  observed.schedule_at(1.0, [] {});
  observed.run();

  des::Simulation foreign;
  foreign.schedule_at(1.0, [] {});
  foreign.schedule_at(2.0, [] {});
  foreign.run();

  // The foreign engine is internally conserved, so conserved stays true —
  // the audit is engine-side. Verify the flag reflects the engine counters.
  const ProfileSnapshot ok = prof.snapshot(foreign);
  EXPECT_TRUE(ok.conserved);
  EXPECT_EQ(ok.engine_fired, 2u);
  // But the profiler's own totals reflect only the observed engine.
  EXPECT_EQ(ok.total_fired, 1u);
}

TEST(EventLoopProfiler, RenderTableMentionsNamesAndConservation) {
  des::Simulation sim;
  EventLoopProfiler prof;
  prof.name_tag(kTickTag, "tick");
  sim.set_observer(&prof);
  sim.schedule_at(0.0, [] {}, kTickTag);
  sim.run();
  const std::string table = prof.render_table(sim);
  EXPECT_NE(table.find("tick"), std::string::npos);
  EXPECT_NE(table.find("conservation"), std::string::npos);
  EXPECT_NE(table.find("ok"), std::string::npos);
}

TEST(EventLoopProfiler, JsonFragmentParsesWithExpectedShape) {
  des::Simulation sim;
  EventLoopProfiler prof;
  prof.name_tag(kTickTag, "tick");
  sim.set_observer(&prof);
  sim.schedule_at(0.0, [] {}, kTickTag);
  sim.schedule_at(1.0, [] {}, kTickTag);
  sim.run();

  const ProfileSnapshot snap = prof.snapshot(sim);
  std::ostringstream out;
  EventLoopProfiler::write_json(snap, out);
  const auto doc = util::json::parse(out.str());
  EXPECT_DOUBLE_EQ(doc.find("total_fired")->as_number(), 2.0);
  const auto* conservation = doc.find("conservation");
  ASSERT_NE(conservation, nullptr);
  EXPECT_TRUE(conservation->find("ok")->as_bool());
  const auto& tags = doc.find("tags")->as_array();
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].find("name")->as_string(), "tick");
  EXPECT_DOUBLE_EQ(tags[0].find("fired")->as_number(), 2.0);
}

}  // namespace
}  // namespace ll::obs
