#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace ll::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, HoldsLastWrittenValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(TimeWeighted, IntegratesPiecewiseConstantValue) {
  TimeWeighted tw;
  tw.set(0.0, 2.0);   // value 2 on [0, 10)
  tw.set(10.0, 6.0);  // value 6 on [10, 20)
  tw.set(20.0, 0.0);  // value 0 on [20, 40]
  EXPECT_DOUBLE_EQ(tw.integral(40.0), 2.0 * 10 + 6.0 * 10 + 0.0 * 20);
  EXPECT_DOUBLE_EQ(tw.mean(40.0), 80.0 / 40.0);
  EXPECT_DOUBLE_EQ(tw.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(tw.max_value(), 6.0);
  EXPECT_EQ(tw.updates(), 3u);
  EXPECT_DOUBLE_EQ(tw.last_value(), 0.0);
}

TEST(TimeWeighted, TrailingStintExtendsToSnapshotInstant) {
  TimeWeighted tw;
  tw.set(5.0, 4.0);
  // Only one update: the integral is the stint [5, 15] at value 4.
  EXPECT_DOUBLE_EQ(tw.integral(15.0), 40.0);
  EXPECT_DOUBLE_EQ(tw.mean(15.0), 4.0);
}

TEST(TimeWeighted, ZeroElapsedTimeMeansZeroMean) {
  TimeWeighted tw;
  EXPECT_DOUBLE_EQ(tw.mean(0.0), 0.0);
  tw.set(7.0, 3.0);
  EXPECT_DOUBLE_EQ(tw.mean(7.0), 0.0);
}

TEST(TimeWeighted, BackwardsUpdateThrows) {
  TimeWeighted tw;
  tw.set(10.0, 1.0);
  EXPECT_THROW(tw.set(9.0, 2.0), std::logic_error);
  EXPECT_THROW(static_cast<void>(tw.integral(5.0)), std::logic_error);
}

TEST(MetricRegistry, ReRegistrationReturnsSameMetric) {
  MetricRegistry reg;
  Counter& a = reg.counter("jobs");
  Counter& b = reg.counter("jobs");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistry, KindMismatchThrows) {
  MetricRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.time_weighted("x"), std::logic_error);
}

TEST(MetricRegistry, SnapshotPreservesRegistrationOrder) {
  MetricRegistry reg;
  reg.counter("c").add(2);
  reg.gauge("g").set(1.5);
  reg.time_weighted("tw").set(0.0, 4.0);
  const auto samples = reg.snapshot(10.0);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "c");
  EXPECT_EQ(samples[0].kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(samples[0].value, 2.0);
  EXPECT_EQ(samples[1].name, "g");
  EXPECT_DOUBLE_EQ(samples[1].value, 1.5);
  EXPECT_EQ(samples[2].name, "tw");
  EXPECT_DOUBLE_EQ(samples[2].value, 40.0);  // integral over [0, 10]
  EXPECT_DOUBLE_EQ(samples[2].mean, 4.0);
  EXPECT_EQ(samples[2].updates, 1u);
}

TEST(MetricRegistry, JsonRoundTripsThroughParser) {
  MetricRegistry reg;
  reg.counter("cluster.jobs").add(7);
  reg.gauge("cluster.delivered").set(960.5);
  reg.time_weighted("cluster.queue").set(0.0, 2.0);
  std::ostringstream out;
  reg.write_json(100.0, out);

  const auto doc = util::json::parse(out.str());
  const auto* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->kind(), util::json::Kind::kArray);
  const auto& arr = metrics->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[0].find("name")->as_string(), "cluster.jobs");
  EXPECT_EQ(arr[0].find("kind")->as_string(), "counter");
  EXPECT_DOUBLE_EQ(arr[0].find("value")->as_number(), 7.0);
  EXPECT_DOUBLE_EQ(arr[1].find("value")->as_number(), 960.5);
  EXPECT_EQ(arr[2].find("kind")->as_string(), "time_weighted");
  EXPECT_DOUBLE_EQ(arr[2].find("value")->as_number(), 200.0);
  EXPECT_DOUBLE_EQ(arr[2].find("mean")->as_number(), 2.0);
}

TEST(MetricRegistry, CsvHasHeaderAndOneRowPerMetric) {
  MetricRegistry reg;
  reg.counter("a").add(1);
  reg.gauge("b").set(2.0);
  std::ostringstream out;
  reg.write_csv(0.0, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name,kind,value,mean,min,max,updates"),
            std::string::npos);
  EXPECT_NE(text.find("a,counter,"), std::string::npos);
  EXPECT_NE(text.find("b,gauge,"), std::string::npos);
}

}  // namespace
}  // namespace ll::obs
