/// Observability-transparency regression suite: attaching the event-loop
/// profiler (chained in front of the verify digest/invariant observers) and
/// a metrics registry + timeline to a scenario's simulators must leave every
/// pinned digest byte-identical. This is the load-bearing guarantee of the
/// whole obs layer — instrumentation observes, it never perturbs.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "verify/scenarios.hpp"

namespace ll::verify {
namespace {

TEST(GoldenObservability, ProfilerAttachmentLeavesDigestsIdentical) {
  for (const auto& scenario : scenarios()) {
    SCOPED_TRACE(scenario.name);
    ScenarioOptions plain;  // kGoldenSeed
    const ScenarioResult baseline = scenario.run(plain);

    // One profiler per engine attachment: scenarios may build several
    // engines, and a profiler must not straddle two observer chains.
    std::vector<std::unique_ptr<obs::EventLoopProfiler>> profilers;
    ScenarioOptions instrumented;
    instrumented.wrap_observer = [&](des::SimObserver* inner) {
      profilers.push_back(std::make_unique<obs::EventLoopProfiler>(inner));
      return profilers.back().get();
    };
    const ScenarioResult observed = scenario.run(instrumented);

    EXPECT_EQ(baseline.digest.value(), observed.digest.value())
        << "profiler attachment perturbed the event stream";
    EXPECT_EQ(baseline.events, observed.events);
    EXPECT_EQ(baseline.checks, observed.checks);
    if (!profilers.empty()) {
      std::uint64_t fires = 0;
      for (const auto& p : profilers) fires += p->fires();
      EXPECT_GT(fires, 0u) << "profiler was attached but saw no events";
    }
  }
}

TEST(GoldenObservability, MetricsAndTimelineLeaveClusterDigestsIdentical) {
  bool any_cluster = false;
  for (const auto& scenario : scenarios()) {
    if (scenario.module != "cluster") continue;
    any_cluster = true;
    SCOPED_TRACE(scenario.name);
    ScenarioOptions plain;
    const ScenarioResult baseline = scenario.run(plain);

    obs::MetricRegistry registry;
    obs::Timeline timeline(256);
    ScenarioOptions instrumented;
    instrumented.cluster_hook = [&](cluster::ClusterSim& sim) {
      sim.set_metrics(&registry);
      sim.set_timeline(&timeline);
    };
    const ScenarioResult observed = scenario.run(instrumented);

    EXPECT_EQ(baseline.digest.value(), observed.digest.value())
        << "metrics/timeline attachment perturbed the event stream";
    EXPECT_EQ(baseline.events, observed.events);
    EXPECT_GT(registry.size(), 0u);
    EXPECT_GT(timeline.total_recorded(), 0u);
  }
  EXPECT_TRUE(any_cluster) << "no cluster scenario exercised the hook";
}

TEST(GoldenObservability, FullInstrumentationStackIsTransparent) {
  // Profiler + metrics + timeline together, the way `llsim profile` attaches
  // them — the combination must be as invisible as each piece alone.
  for (const auto& scenario : scenarios()) {
    if (scenario.module != "cluster") continue;
    SCOPED_TRACE(scenario.name);
    ScenarioOptions plain;
    const ScenarioResult baseline = scenario.run(plain);

    std::vector<std::unique_ptr<obs::EventLoopProfiler>> profilers;
    obs::MetricRegistry registry;
    obs::Timeline timeline(64);
    ScenarioOptions instrumented;
    instrumented.wrap_observer = [&](des::SimObserver* inner) {
      profilers.push_back(std::make_unique<obs::EventLoopProfiler>(inner));
      return profilers.back().get();
    };
    instrumented.cluster_hook = [&](cluster::ClusterSim& sim) {
      sim.set_metrics(&registry);
      sim.set_timeline(&timeline);
    };
    const ScenarioResult observed = scenario.run(instrumented);
    EXPECT_EQ(baseline.digest.value(), observed.digest.value());
    EXPECT_EQ(baseline.events, observed.events);
  }
}

TEST(GoldenObservability, FullTracingLeavesEveryDigestIdentical) {
  // The flight recorder on every layer it can reach from a scenario — a
  // TracingObserver per engine attachment plus ClusterSim::set_tracer —
  // must leave all 14 pinned digests byte-identical. A small ring forces
  // wraparound during the run, so the drop path is covered too.
  for (const auto& scenario : scenarios()) {
    SCOPED_TRACE(scenario.name);
    ScenarioOptions plain;  // kGoldenSeed
    const ScenarioResult baseline = scenario.run(plain);

    obs::Tracer tracer(/*ring_capacity=*/512);
    std::vector<std::unique_ptr<obs::TracingObserver>> observers;
    ScenarioOptions traced;
    traced.wrap_observer = [&](des::SimObserver* inner) {
      observers.push_back(
          std::make_unique<obs::TracingObserver>(&tracer, inner));
      return observers.back().get();
    };
    traced.cluster_hook = [&](cluster::ClusterSim& sim) {
      sim.set_tracer(&tracer);
    };
    const ScenarioResult observed = scenario.run(traced);

    EXPECT_EQ(baseline.digest.value(), observed.digest.value())
        << "tracer attachment perturbed the event stream";
    EXPECT_EQ(baseline.events, observed.events);
    EXPECT_EQ(baseline.checks, observed.checks);
    // Scenarios without a DES engine (pure RNG/workload checks) never
    // invoke wrap_observer; only attached tracers must have recorded.
    if (!observers.empty()) {
      EXPECT_GT(tracer.recorded(), 0u)
          << "tracing was attached but recorded nothing";
    }
  }
}

}  // namespace
}  // namespace ll::verify
