#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "des/simulation.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/json.hpp"

namespace ll::obs {
namespace {

constexpr std::string_view kSchema = R"({
  "required": {
    "tool": "string",
    "version": "string",
    "seed": "number",
    "config": "object",
    "metrics": "array"
  }
})";

RunManifest sample_manifest() {
  RunManifest m;
  m.tool = "llsim cluster";
  m.version = "abc1234";
  m.seed = 1998;
  m.config = {{"policy", "LL"}, {"nodes", "8"}};
  MetricRegistry reg;
  reg.counter("jobs").add(3);
  m.metrics = reg.snapshot(0.0);
  return m;
}

std::string render(const RunManifest& m) {
  std::ostringstream out;
  write_manifest_json(m, out);
  return out.str();
}

TEST(Manifest, WritesParseableJsonWithAllSections) {
  RunManifest m = sample_manifest();
  des::Simulation sim;
  EventLoopProfiler prof;
  sim.set_observer(&prof);
  sim.schedule_at(1.0, [] {}, 7);
  sim.run();
  m.profile = prof.snapshot(sim);

  const auto doc = util::json::parse(render(m));
  EXPECT_EQ(doc.find("tool")->as_string(), "llsim cluster");
  EXPECT_EQ(doc.find("version")->as_string(), "abc1234");
  EXPECT_DOUBLE_EQ(doc.find("seed")->as_number(), 1998.0);
  const auto* config = doc.find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->find("policy")->as_string(), "LL");
  EXPECT_EQ(config->find("nodes")->as_string(), "8");
  ASSERT_EQ(doc.find("metrics")->kind(), util::json::Kind::kArray);
  const auto* profile = doc.find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_DOUBLE_EQ(profile->find("total_fired")->as_number(), 1.0);
}

TEST(Manifest, ProfileSectionIsOptional) {
  const auto doc = util::json::parse(render(sample_manifest()));
  EXPECT_EQ(doc.find("profile"), nullptr);
}

TEST(Manifest, ValidatesAgainstSchema) {
  EXPECT_EQ(validate_manifest(render(sample_manifest()), kSchema), "");
}

TEST(Manifest, MissingKeyFailsValidation) {
  RunManifest m = sample_manifest();
  std::string text = render(m);
  // Strip the "seed" member from the rendered document.
  const auto pos = text.find("\"seed\"");
  ASSERT_NE(pos, std::string::npos);
  const auto end = text.find(',', pos);
  text.erase(pos, end - pos + 1);
  const std::string error = validate_manifest(text, kSchema);
  EXPECT_NE(error.find("seed"), std::string::npos) << error;
}

TEST(Manifest, KindMismatchFailsValidation) {
  constexpr std::string_view bad =
      R"({"tool": 5, "version": "v", "seed": 1, "config": {}, "metrics": []})";
  const std::string error = validate_manifest(bad, kSchema);
  EXPECT_NE(error.find("tool"), std::string::npos) << error;
  EXPECT_NE(error.find("number"), std::string::npos) << error;
}

TEST(Manifest, GoodputFieldsWrittenWhenSet) {
  RunManifest m = sample_manifest();
  m.goodput = 0.875;
  m.work_lost = 42.5;
  const auto doc = util::json::parse(render(m));
  EXPECT_DOUBLE_EQ(doc.find("goodput")->as_number(), 0.875);
  EXPECT_DOUBLE_EQ(doc.find("work_lost")->as_number(), 42.5);
  // Absent when unset (fault-free tools keep their old shape).
  const auto plain = util::json::parse(render(sample_manifest()));
  EXPECT_EQ(plain.find("goodput"), nullptr);
  EXPECT_EQ(plain.find("work_lost"), nullptr);
}

TEST(Manifest, OptionalSchemaKeysCheckedOnlyWhenPresent) {
  constexpr std::string_view schema = R"({
    "required": {
      "tool": "string",
      "version": "string",
      "seed": "number",
      "config": "object",
      "metrics": "array"
    },
    "optional": {
      "goodput": "number",
      "work_lost": "number"
    }
  })";
  // Absent optional keys: valid.
  EXPECT_EQ(validate_manifest(render(sample_manifest()), schema), "");
  // Present with the right kind: valid.
  RunManifest m = sample_manifest();
  m.goodput = 0.9;
  m.work_lost = 1.0;
  EXPECT_EQ(validate_manifest(render(m), schema), "");
  // Present with the wrong kind: rejected.
  std::string text = render(m);
  const auto pos = text.find("\"goodput\": ");
  ASSERT_NE(pos, std::string::npos);
  const auto value_end = text.find_first_of(",\n", pos);
  ASSERT_NE(value_end, std::string::npos);
  text.replace(pos, value_end - pos, "\"goodput\": \"high\"");
  const std::string error = validate_manifest(text, schema);
  EXPECT_NE(error.find("goodput"), std::string::npos) << error;
}

TEST(Manifest, TraceSectionWrittenWhenSet) {
  RunManifest m = sample_manifest();
  TraceStats trace;
  trace.timeline_recorded = 100;
  trace.timeline_dropped = 4;
  trace.tracer_recorded = 5000;
  trace.tracer_dropped = 904;
  m.trace = trace;
  const auto doc = util::json::parse(render(m));
  const auto* section = doc.find("trace");
  ASSERT_NE(section, nullptr);
  EXPECT_DOUBLE_EQ(section->find("timeline_recorded")->as_number(), 100.0);
  EXPECT_DOUBLE_EQ(section->find("timeline_dropped")->as_number(), 4.0);
  EXPECT_DOUBLE_EQ(section->find("tracer_recorded")->as_number(), 5000.0);
  EXPECT_DOUBLE_EQ(section->find("tracer_dropped")->as_number(), 904.0);
  // Absent when unset (trace-free tools keep their old shape).
  EXPECT_EQ(util::json::parse(render(sample_manifest())).find("trace"),
            nullptr);
}

TEST(Manifest, TraceSectionValidatesAsOptionalObject) {
  constexpr std::string_view schema = R"({
    "required": {
      "tool": "string",
      "version": "string",
      "seed": "number",
      "config": "object",
      "metrics": "array"
    },
    "optional": {
      "trace": "object"
    }
  })";
  EXPECT_EQ(validate_manifest(render(sample_manifest()), schema), "");
  RunManifest m = sample_manifest();
  m.trace = TraceStats{};
  EXPECT_EQ(validate_manifest(render(m), schema), "");
}

TEST(Manifest, MalformedSchemaReportsError) {
  EXPECT_NE(validate_manifest(render(sample_manifest()), R"({"nope": 1})"),
            "");
}

TEST(Manifest, ConfigValuesAreEscaped) {
  RunManifest m = sample_manifest();
  m.config.emplace_back("note", "a \"quoted\" value\n");
  const auto doc = util::json::parse(render(m));
  EXPECT_EQ(doc.find("config")->find("note")->as_string(),
            "a \"quoted\" value\n");
}

TEST(Manifest, GitDescribeNeverEmpty) {
  EXPECT_FALSE(current_git_describe().empty());
}

}  // namespace
}  // namespace ll::obs
