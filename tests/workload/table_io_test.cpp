#include "workload/table_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace ll::workload {
namespace {

TEST(TableIo, RoundTripStreamIsExact) {
  const BurstTable& table = default_burst_table();
  std::stringstream buf;
  save_table(table, buf);
  const BurstTable back = load_table(buf);
  for (std::size_t i = 0; i < kUtilizationLevels; ++i) {
    EXPECT_DOUBLE_EQ(back.level(i).run_mean, table.level(i).run_mean) << i;
    EXPECT_DOUBLE_EQ(back.level(i).run_var, table.level(i).run_var) << i;
    EXPECT_DOUBLE_EQ(back.level(i).idle_mean, table.level(i).idle_mean) << i;
    EXPECT_DOUBLE_EQ(back.level(i).idle_var, table.level(i).idle_var) << i;
  }
}

TEST(TableIo, RoundTripFile) {
  const std::string path = ::testing::TempDir() + "/ll_table_io.bursts";
  save_table(default_burst_table(), path);
  const BurstTable back = load_table(path);
  EXPECT_DOUBLE_EQ(back.level(10).run_mean,
                   default_burst_table().level(10).run_mean);
  std::remove(path.c_str());
}

TEST(TableIo, AcceptsCommentsAndBlankLines) {
  const BurstTable& table = default_burst_table();
  std::stringstream buf;
  save_table(table, buf);
  std::string text = buf.str();
  text.insert(text.find('\n') + 1, "# a comment\n\n");
  std::stringstream patched(text);
  EXPECT_NO_THROW((void)load_table(patched));
}

TEST(TableIo, RejectsBadHeader) {
  std::stringstream buf("not a table\n");
  EXPECT_THROW((void)load_table(buf), std::runtime_error);
}

TEST(TableIo, RejectsMissingLevel) {
  std::stringstream buf;
  save_table(default_burst_table(), buf);
  // Drop the last line.
  std::string text = buf.str();
  text.erase(text.rfind("20 "));
  std::stringstream truncated(text);
  EXPECT_THROW((void)load_table(truncated), std::runtime_error);
}

TEST(TableIo, RejectsDuplicateLevel) {
  std::stringstream buf;
  save_table(default_burst_table(), buf);
  std::string text = buf.str();
  text += "5 0.01 0.0001 0.05 0.001\n";
  std::stringstream duplicated(text);
  EXPECT_THROW((void)load_table(duplicated), std::runtime_error);
}

TEST(TableIo, RejectsOutOfRangeLevel) {
  std::stringstream buf("# ll-burst-table v1\n21 0.1 0.1 0.1 0.1\n");
  EXPECT_THROW((void)load_table(buf), std::runtime_error);
}

TEST(TableIo, RejectsMalformedLine) {
  std::stringstream buf("# ll-burst-table v1\n0 0.1 oops 0.1 0.1\n");
  EXPECT_THROW((void)load_table(buf), std::runtime_error);
}

TEST(TableIo, MissingFileThrows) {
  EXPECT_THROW((void)load_table("/nonexistent/xyz.bursts"),
               std::runtime_error);
}

TEST(TableIo, LoadedTableIsUsable) {
  std::stringstream buf;
  save_table(default_burst_table(), buf);
  const BurstTable back = load_table(buf);
  // The reloaded table supports the full sampling pipeline.
  const BurstDistributions dist = back.distributions_at(0.5);
  EXPECT_NEAR(dist.run.mean(), back.level(10).run_mean, 1e-12);
}

}  // namespace
}  // namespace ll::workload
