#include "workload/fit.hpp"

#include <gtest/gtest.h>

#include "workload/fine_generator.hpp"

namespace ll::workload {
namespace {

TEST(Fit, RejectsBadWindow) {
  trace::FineTrace t;
  t.push(trace::BurstKind::Run, 1.0);
  EXPECT_THROW((void)(analyze_fine_trace(t, 0.0)), std::invalid_argument);
}

TEST(Fit, EmptyTraceYieldsEmptyAnalysis) {
  const BurstAnalysis a = analyze_fine_trace(trace::FineTrace{});
  for (const LevelSamples& level : a.levels) {
    EXPECT_TRUE(level.run.empty());
    EXPECT_TRUE(level.idle.empty());
  }
  EXPECT_THROW((void)(a.to_table()), std::logic_error);
}

TEST(Fit, ConstantHalfUtilizationLandsInMiddleBucket) {
  // Perfectly regular 0.1s run / 0.1s idle: every 2s window is 50%.
  trace::FineTrace t;
  for (int i = 0; i < 500; ++i) {
    t.push(trace::BurstKind::Run, 0.1);
    t.push(trace::BurstKind::Idle, 0.1);
  }
  const BurstAnalysis a = analyze_fine_trace(t);
  // Level 10 == 50%.
  EXPECT_EQ(a.levels[10].run.size(), 500u);
  EXPECT_EQ(a.levels[10].idle.size(), 500u);
  for (std::size_t i = 0; i < kUtilizationLevels; ++i) {
    if (i == 10) continue;
    EXPECT_TRUE(a.levels[i].run.empty()) << i;
  }
}

TEST(Fit, MomentsOfRegularTrace) {
  trace::FineTrace t;
  for (int i = 0; i < 100; ++i) {
    t.push(trace::BurstKind::Run, 0.1);
    t.push(trace::BurstKind::Idle, 0.1);
  }
  const auto moments = analyze_fine_trace(t).moments();
  EXPECT_NEAR(moments[10].run_mean, 0.1, 1e-12);
  EXPECT_NEAR(moments[10].run_var, 0.0, 1e-12);
  EXPECT_NEAR(moments[10].idle_mean, 0.1, 1e-12);
}

TEST(Fit, BurstSpanningWindowsCountedByStart) {
  // One 3s run burst then 1s idle: window0 util = 1.0, window1 util = 0.5.
  trace::FineTrace t;
  t.push(trace::BurstKind::Run, 3.0);
  t.push(trace::BurstKind::Idle, 1.0);
  const BurstAnalysis a = analyze_fine_trace(t);
  // The run burst starts in window 0 (level 20 == 100%).
  EXPECT_EQ(a.levels[20].run.size(), 1u);
  EXPECT_DOUBLE_EQ(a.levels[20].run[0], 3.0);
  // The idle burst starts in window 1 (level 10 == 50%).
  EXPECT_EQ(a.levels[10].idle.size(), 1u);
}

TEST(Fit, ToTableInterpolatesEmptyLevels) {
  trace::FineTrace t;
  // Populate only the 50% level.
  for (int i = 0; i < 100; ++i) {
    t.push(trace::BurstKind::Run, 0.1);
    t.push(trace::BurstKind::Idle, 0.1);
  }
  const BurstTable table = analyze_fine_trace(t).to_table();
  // Every level is filled by flat extrapolation from the one known level.
  EXPECT_NEAR(table.level(0).run_mean, 0.1, 1e-12);
  EXPECT_NEAR(table.level(20).run_mean, 0.1, 1e-12);
}

TEST(Fit, ToTableInterpolatesBetweenKnownLevels) {
  trace::FineTrace t;
  // ~25% utilization windows: 0.05 run / 0.15 idle.
  for (int i = 0; i < 200; ++i) {
    t.push(trace::BurstKind::Run, 0.05);
    t.push(trace::BurstKind::Idle, 0.15);
  }
  // ~75% utilization windows: 0.15 run / 0.05 idle.
  for (int i = 0; i < 200; ++i) {
    t.push(trace::BurstKind::Run, 0.15);
    t.push(trace::BurstKind::Idle, 0.05);
  }
  const BurstTable table = analyze_fine_trace(t).to_table();
  // Level 10 (50%) lies midway between levels 5 (25%) and 15 (75%).
  // (The segment-boundary window contributes a slightly mixed sample, so
  // the midpoint is approximate.)
  EXPECT_NEAR(table.level(10).run_mean, 0.1, 0.005);
}

TEST(Fit, RoundTripRecoversGeneratingMoments) {
  // The paper's full pipeline: generate at known utilization from the table,
  // re-fit, and compare the recovered moments at that level.
  const BurstTable& truth = default_burst_table();
  const double u = 0.5;
  const auto t = generate_fine_trace(truth, u, 20000.0, rng::Stream(42));
  const BurstAnalysis a = analyze_fine_trace(t);
  const auto moments = a.moments();

  // Window-utilization noise spreads samples over neighbouring levels, but
  // the bulk must land near the target level.
  std::size_t total_run = 0;
  for (const auto& level : a.levels) total_run += level.run.size();
  const std::size_t near_target = a.levels[8].run.size() +
                                  a.levels[9].run.size() +
                                  a.levels[10].run.size() +
                                  a.levels[11].run.size() +
                                  a.levels[12].run.size();
  EXPECT_GT(near_target, total_run / 2);

  const BurstMoments expected = truth.moments_at(u);
  // Window truncation biases bursts slightly short; allow 20%.
  EXPECT_NEAR(moments[10].run_mean, expected.run_mean, expected.run_mean * 0.20);
  EXPECT_NEAR(moments[10].idle_mean, expected.idle_mean,
              expected.idle_mean * 0.20);
}

TEST(Fit, PoolingMergesSamples) {
  trace::FineTrace a;
  a.push(trace::BurstKind::Run, 0.1);
  a.push(trace::BurstKind::Idle, 0.1);
  trace::FineTrace b;
  b.push(trace::BurstKind::Run, 0.1);
  b.push(trace::BurstKind::Idle, 0.1);
  const BurstAnalysis pooled = analyze_fine_traces({a, b});
  EXPECT_EQ(pooled.levels[10].run.size(), 2u);
  EXPECT_EQ(pooled.levels[10].idle.size(), 2u);
}

}  // namespace
}  // namespace ll::workload
