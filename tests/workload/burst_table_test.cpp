#include "workload/burst_table.hpp"

#include <gtest/gtest.h>

namespace ll::workload {
namespace {

TEST(BurstMoments, ImpliedUtilization) {
  BurstMoments m{0.02, 0.0, 0.06, 0.0};
  EXPECT_DOUBLE_EQ(m.implied_utilization(), 0.25);
  EXPECT_DOUBLE_EQ((BurstMoments{}).implied_utilization(), 0.0);
}

TEST(BurstTable, RejectsNegativeMoments) {
  std::array<BurstMoments, kUtilizationLevels> levels{};
  levels[3].run_mean = -0.1;
  EXPECT_THROW((void)(BurstTable{levels}), std::invalid_argument);
}

TEST(BurstTable, LevelUtilizationSpacing) {
  EXPECT_DOUBLE_EQ(BurstTable::level_utilization(0), 0.0);
  EXPECT_DOUBLE_EQ(BurstTable::level_utilization(10), 0.5);
  EXPECT_DOUBLE_EQ(BurstTable::level_utilization(20), 1.0);
}

TEST(BurstTable, MomentsAtInterpolatesLinearly) {
  std::array<BurstMoments, kUtilizationLevels> levels{};
  for (std::size_t i = 0; i < kUtilizationLevels; ++i) {
    const auto x = static_cast<double>(i);
    levels[i] = BurstMoments{x, 2 * x, 3 * x, 4 * x};
  }
  const BurstTable table(levels);
  // Exactly at a level.
  EXPECT_DOUBLE_EQ(table.moments_at(0.5).run_mean, 10.0);
  // Halfway between levels 10 and 11 (u = 0.525).
  const BurstMoments mid = table.moments_at(0.525);
  EXPECT_NEAR(mid.run_mean, 10.5, 1e-12);
  EXPECT_NEAR(mid.idle_var, 42.0, 1e-12);
}

TEST(BurstTable, MomentsAtClampsOutOfRange) {
  const BurstTable& table = default_burst_table();
  EXPECT_DOUBLE_EQ(table.moments_at(-0.5).run_mean,
                   table.moments_at(0.0).run_mean);
  EXPECT_DOUBLE_EQ(table.moments_at(1.5).idle_mean,
                   table.moments_at(1.0).idle_mean);
}

TEST(BurstTable, DistributionsRejectEndpoints) {
  const BurstTable& table = default_burst_table();
  EXPECT_THROW((void)(table.distributions_at(0.0)), std::invalid_argument);
  EXPECT_THROW((void)(table.distributions_at(1.0)), std::invalid_argument);
  EXPECT_THROW((void)(table.distributions_at(-0.1)), std::invalid_argument);
}

TEST(DefaultTable, SelfConsistentUtilization) {
  // The default table's run/idle means must imply exactly the level's
  // utilization — that is what makes the two-level generator reproduce the
  // coarse trace's utilization in expectation.
  const BurstTable& table = default_burst_table();
  for (std::size_t i = 1; i + 1 < kUtilizationLevels; ++i) {
    const double u = BurstTable::level_utilization(i);
    EXPECT_NEAR(table.level(i).implied_utilization(), u, 1e-9) << "level " << i;
  }
}

TEST(DefaultTable, EndpointsAreDegenerate) {
  const BurstTable& table = default_burst_table();
  // Level 0 keeps finite-size (rare) run bursts: implied utilization ~0 but
  // run_mean stays at the low-load burst size so LDR stays finite.
  EXPECT_LT(table.level(0).implied_utilization(), 0.01);
  EXPECT_GT(table.level(0).run_mean, 0.005);
  EXPECT_GT(table.level(0).idle_mean, 1.0);
  EXPECT_DOUBLE_EQ(table.level(kUtilizationLevels - 1).idle_mean, 0.0);
  EXPECT_GT(table.level(kUtilizationLevels - 1).run_mean, 0.0);
}

TEST(DefaultTable, RunMeanRisesWithUtilization) {
  // Figure 3 top-left shape.
  const BurstTable& table = default_burst_table();
  for (std::size_t i = 1; i + 1 < kUtilizationLevels; ++i) {
    EXPECT_GT(table.level(i + 1).run_mean, table.level(i).run_mean) << i;
  }
  // End near the paper's ~0.25 s.
  EXPECT_GT(table.level(kUtilizationLevels - 1).run_mean, 0.15);
  EXPECT_LT(table.level(kUtilizationLevels - 1).run_mean, 0.40);
}

TEST(DefaultTable, IdleMeanFallsWithUtilization) {
  // Figure 3 bottom-left shape.
  const BurstTable& table = default_burst_table();
  for (std::size_t i = 1; i + 2 < kUtilizationLevels; ++i) {
    EXPECT_GT(table.level(i).idle_mean, table.level(i + 1).idle_mean) << i;
  }
}

TEST(DefaultTable, BurstsAreHyperexponential) {
  // cv^2 > 1 at every interior level: the fitted distributions are true H2.
  const BurstTable& table = default_burst_table();
  for (std::size_t i = 1; i + 1 < kUtilizationLevels; ++i) {
    const BurstMoments& m = table.level(i);
    EXPECT_GT(m.run_var / (m.run_mean * m.run_mean), 1.0) << i;
    EXPECT_GT(m.idle_var / (m.idle_mean * m.idle_mean), 1.0) << i;
  }
}

TEST(DefaultTable, FittedDistributionsMatchMoments) {
  const BurstTable& table = default_burst_table();
  for (double u : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const BurstMoments m = table.moments_at(u);
    const BurstDistributions d = table.distributions_at(u);
    EXPECT_NEAR(d.run.mean(), m.run_mean, m.run_mean * 1e-9);
    EXPECT_NEAR(d.run.variance(), m.run_var, m.run_var * 1e-9);
    EXPECT_NEAR(d.idle.mean(), m.idle_mean, m.idle_mean * 1e-9);
    EXPECT_NEAR(d.idle.variance(), m.idle_var, m.idle_var * 1e-9);
  }
}

// Interpolated utilization consistency across a dense sweep.
class TableSweep : public ::testing::TestWithParam<double> {};

TEST_P(TableSweep, InterpolatedMomentsNearlySelfConsistent) {
  // Linear interpolation of run/idle means does not exactly preserve
  // u = R/(R+I) between grid points, but it must stay close.
  const double u = GetParam();
  const BurstMoments m = default_burst_table().moments_at(u);
  EXPECT_NEAR(m.implied_utilization(), u, 0.02) << "u=" << u;
}

INSTANTIATE_TEST_SUITE_P(DenseUtilGrid, TableSweep,
                         ::testing::Values(0.07, 0.13, 0.22, 0.37, 0.41, 0.53,
                                           0.68, 0.72, 0.81, 0.94));

}  // namespace
}  // namespace ll::workload
