#include "workload/fine_generator.hpp"

#include <gtest/gtest.h>

namespace ll::workload {
namespace {

TEST(FineGenerator, RejectsBadInputs) {
  const BurstTable& table = default_burst_table();
  EXPECT_THROW(generate_fine_trace(table, 0.0, 10.0, rng::Stream(1)),
               std::invalid_argument);
  EXPECT_THROW(generate_fine_trace(table, 1.0, 10.0, rng::Stream(1)),
               std::invalid_argument);
  EXPECT_THROW(generate_fine_trace(table, 0.5, 0.0, rng::Stream(1)),
               std::invalid_argument);
}

TEST(FineGenerator, TraceDurationMatchesRequest) {
  const auto t =
      generate_fine_trace(default_burst_table(), 0.3, 50.0, rng::Stream(2));
  EXPECT_NEAR(t.duration(), 50.0, 1e-9);
}

TEST(FineGenerator, BurstsAlternate) {
  const auto t =
      generate_fine_trace(default_burst_table(), 0.5, 20.0, rng::Stream(3));
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_NE(t.bursts()[i].kind, t.bursts()[i - 1].kind) << i;
  }
}

TEST(FineGenerator, Deterministic) {
  const auto a =
      generate_fine_trace(default_burst_table(), 0.4, 30.0, rng::Stream(4));
  const auto b =
      generate_fine_trace(default_burst_table(), 0.4, 30.0, rng::Stream(4));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.bursts()[i].duration, b.bursts()[i].duration);
  }
}

// Property sweep: generated traces must realize the requested utilization.
class UtilizationSweep : public ::testing::TestWithParam<double> {};

TEST_P(UtilizationSweep, RealizedUtilizationMatchesTarget) {
  const double u = GetParam();
  const auto t =
      generate_fine_trace(default_burst_table(), u, 2000.0, rng::Stream(77));
  EXPECT_NEAR(t.utilization(), u, 0.04) << "target u=" << u;
}

INSTANTIATE_TEST_SUITE_P(TargetGrid, UtilizationSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                           0.7, 0.8, 0.9, 0.95));

TEST(FineGeneratorProfile, PureIdleWindow) {
  const auto t = generate_fine_trace_profile(default_burst_table(),
                                             {0.0, 0.0}, 2.0, rng::Stream(5));
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.bursts()[0].kind, trace::BurstKind::Idle);
  EXPECT_DOUBLE_EQ(t.bursts()[0].duration, 2.0);
  EXPECT_DOUBLE_EQ(t.utilization(), 0.0);
}

TEST(FineGeneratorProfile, PureRunWindow) {
  const auto t = generate_fine_trace_profile(default_burst_table(), {1.0}, 2.0,
                                             rng::Stream(6));
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.bursts()[0].kind, trace::BurstKind::Run);
  EXPECT_DOUBLE_EQ(t.utilization(), 1.0);
}

TEST(FineGeneratorProfile, MixedProfileTracksWindows) {
  // 100 windows at 0.2 then 100 windows at 0.8.
  std::vector<double> profile(200, 0.2);
  for (std::size_t i = 100; i < 200; ++i) profile[i] = 0.8;
  const auto t = generate_fine_trace_profile(default_burst_table(), profile,
                                             2.0, rng::Stream(7));
  EXPECT_NEAR(t.duration(), 400.0, 1e-9);
  // Split the trace's run time by half-duration boundary.
  double tcur = 0.0;
  double run_first = 0.0;
  double run_second = 0.0;
  for (const auto& b : t.bursts()) {
    if (b.kind == trace::BurstKind::Run) {
      (tcur < 200.0 ? run_first : run_second) += b.duration;
    }
    tcur += b.duration;
  }
  EXPECT_NEAR(run_first / 200.0, 0.2, 0.06);
  EXPECT_NEAR(run_second / 200.0, 0.8, 0.06);
}

TEST(FineGeneratorProfile, RejectsOutOfRangeProfile) {
  EXPECT_THROW(generate_fine_trace_profile(default_burst_table(), {1.5}, 2.0,
                                           rng::Stream(8)),
               std::invalid_argument);
  EXPECT_THROW(generate_fine_trace_profile(default_burst_table(), {-0.1}, 2.0,
                                           rng::Stream(8)),
               std::invalid_argument);
  EXPECT_THROW(generate_fine_trace_profile(default_burst_table(), {0.5}, 0.0,
                                           rng::Stream(8)),
               std::invalid_argument);
}

TEST(FineGeneratorProfile, EmptyProfileYieldsEmptyTrace) {
  const auto t = generate_fine_trace_profile(default_burst_table(), {}, 2.0,
                                             rng::Stream(9));
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace ll::workload
