#include "workload/local_workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ll::workload {
namespace {

trace::CoarseTrace constant_trace(double cpu, std::size_t windows) {
  trace::CoarseTrace t(2.0);
  for (std::size_t i = 0; i < windows; ++i) t.push({cpu, 32768, false});
  return t;
}

TEST(LocalWorkload, RejectsEmptyTraceAndNegativeOffset) {
  trace::CoarseTrace empty(2.0);
  EXPECT_THROW(LocalWorkloadGenerator(empty, default_burst_table(),
                                      rng::Stream(1)),
               std::invalid_argument);
  const auto t = constant_trace(0.5, 4);
  EXPECT_THROW(LocalWorkloadGenerator(t, default_burst_table(), rng::Stream(1),
                                      -1.0),
               std::invalid_argument);
}

TEST(LocalWorkload, BurstsAbutAndAdvanceTime) {
  const auto t = constant_trace(0.5, 100);
  LocalWorkloadGenerator gen(t, default_burst_table(), rng::Stream(2));
  double expected_start = 0.0;
  for (int i = 0; i < 200; ++i) {
    const auto burst = gen.next();
    EXPECT_NEAR(burst.start, expected_start, 1e-9);
    EXPECT_GT(burst.burst.duration, 0.0);
    expected_start = burst.start + burst.burst.duration;
  }
  EXPECT_NEAR(gen.now(), expected_start, 1e-9);
}

TEST(LocalWorkload, IdleWindowEmitsSingleIdleBurst) {
  const auto t = constant_trace(0.0, 10);
  LocalWorkloadGenerator gen(t, default_burst_table(), rng::Stream(3));
  for (int i = 0; i < 5; ++i) {
    const auto burst = gen.next();
    EXPECT_EQ(burst.burst.kind, trace::BurstKind::Idle);
    EXPECT_DOUBLE_EQ(burst.burst.duration, 2.0);
  }
}

TEST(LocalWorkload, SaturatedWindowEmitsSingleRunBurst) {
  const auto t = constant_trace(1.0, 10);
  LocalWorkloadGenerator gen(t, default_burst_table(), rng::Stream(4));
  const auto burst = gen.next();
  EXPECT_EQ(burst.burst.kind, trace::BurstKind::Run);
  EXPECT_DOUBLE_EQ(burst.burst.duration, 2.0);
}

TEST(LocalWorkload, RealizedUtilizationTracksTrace) {
  const auto t = constant_trace(0.3, 2000);
  LocalWorkloadGenerator gen(t, default_burst_table(), rng::Stream(5));
  double run = 0.0;
  while (gen.now() < 3000.0) {
    const auto burst = gen.next();
    if (burst.burst.kind == trace::BurstKind::Run) run += burst.burst.duration;
  }
  EXPECT_NEAR(run / gen.now(), 0.3, 0.04);
}

TEST(LocalWorkload, BurstsNeverCrossWindowBoundaries) {
  const auto t = constant_trace(0.5, 500);
  LocalWorkloadGenerator gen(t, default_burst_table(), rng::Stream(6));
  while (gen.now() < 500.0) {
    const auto burst = gen.next();
    const double start_window = std::floor(burst.start / 2.0 - 1e-9);
    const double end_window =
        std::floor((burst.start + burst.burst.duration) / 2.0 + 1e-9);
    EXPECT_LE(end_window - start_window, 1.0 + 1e-9);
  }
}

TEST(LocalWorkload, OffsetShiftsTraceLookup) {
  trace::CoarseTrace t(2.0);
  t.push({0.0, 0, false});  // window 0 idle
  t.push({1.0, 0, false});  // window 1 saturated
  LocalWorkloadGenerator gen(t, default_burst_table(), rng::Stream(7),
                             /*offset=*/2.0);
  // With offset 2, generator time 0 maps to window 1 (saturated).
  const auto burst = gen.next();
  EXPECT_EQ(burst.burst.kind, trace::BurstKind::Run);
}

TEST(LocalWorkload, UtilizationAtUsesOffsetAndWrap) {
  trace::CoarseTrace t(2.0);
  t.push({0.1, 0, false});
  t.push({0.9, 0, false});
  LocalWorkloadGenerator gen(t, default_burst_table(), rng::Stream(8), 2.0);
  EXPECT_DOUBLE_EQ(gen.utilization_at(0.0), 0.9);
  EXPECT_DOUBLE_EQ(gen.utilization_at(2.0), 0.1);  // wrapped
}

TEST(LocalWorkload, DeterministicForSeed) {
  const auto t = constant_trace(0.4, 100);
  LocalWorkloadGenerator a(t, default_burst_table(), rng::Stream(9));
  LocalWorkloadGenerator b(t, default_burst_table(), rng::Stream(9));
  for (int i = 0; i < 100; ++i) {
    const auto ba = a.next();
    const auto bb = b.next();
    EXPECT_DOUBLE_EQ(ba.burst.duration, bb.burst.duration);
    EXPECT_EQ(ba.burst.kind, bb.burst.kind);
  }
}

TEST(LocalWorkload, TraceWrapsForLongRuns) {
  const auto t = constant_trace(0.2, 5);  // only 10 seconds of trace
  LocalWorkloadGenerator gen(t, default_burst_table(), rng::Stream(10));
  while (gen.now() < 100.0) {
    EXPECT_NO_THROW(gen.next());
  }
  EXPECT_GE(gen.now(), 100.0);
}

}  // namespace
}  // namespace ll::workload
