/// Unit suite for the conservative time-windowed sharded engine
/// (src/shard/). The load-bearing property is the determinism contract:
/// simulated results are bit-identical for every shard count, every queue
/// backend, and serial vs work-stealing execution. The mailbox edge cases
/// (window-boundary arrivals, migrations racing node crashes, empty shard
/// slices) and the per-entity RNG regression checks ride alongside.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/scenario_builders.hpp"
#include "des/event_queue.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "rng/rng.hpp"
#include "shard/sharded_sim.hpp"
#include "util/runner.hpp"

namespace ll::shard {
namespace {

using test_support::base_config;
using test_support::migration_cost;
using test_support::table;

/// Everything the shard-count invariance contract pins, reduced in
/// canonical (node-index / job-id) order by the engine itself. Exact
/// floating-point equality is intentional: the contract is bit-identity,
/// not tolerance.
struct Fingerprint {
  double now = 0.0;
  double delivered = 0.0;
  double lost = 0.0;
  double fg_delay = 0.0;
  std::size_t migrations = 0;
  std::size_t completions = 0;
  std::size_t restarts = 0;
  std::size_t crashes = 0;
  std::size_t aborts = 0;
  std::size_t retries = 0;
  std::size_t checkpoints = 0;
  std::uint64_t logical = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const ShardedClusterSim& sim) {
  Fingerprint f;
  f.now = sim.now();
  f.delivered = sim.delivered_cpu();
  f.lost = sim.work_lost();
  f.fg_delay = sim.foreground_delay_ratio();
  f.migrations = sim.migrations_started();
  f.completions = sim.completions();
  f.restarts = sim.restarts();
  f.crashes = sim.crashes();
  f.aborts = sim.migration_aborts();
  f.retries = sim.migration_retries();
  f.checkpoints = sim.checkpoints_taken();
  f.logical = sim.logical_events();
  return f;
}

/// Pattern pool that keeps owners cycling between idle and busy so foreign
/// jobs are recruited, evicted and re-placed — the cross-shard traffic the
/// mailbox tests need. Two distinct phases stop the nodes from moving in
/// lockstep (node i replays pool[i % 2]).
std::vector<trace::CoarseTrace> churn_pool(std::size_t windows = 600) {
  std::string a;
  std::string b;
  for (std::size_t i = 0; i < windows; ++i) {
    a += (i % 8 < 5) ? '.' : 'B';
    b += (i % 6 < 3) ? 'B' : '.';
  }
  return {test_support::pattern_trace(a, 0.8),
          test_support::pattern_trace(b, 0.8)};
}

cluster::ClusterConfig churn_config(std::size_t nodes,
                                    core::PolicyKind policy =
                                        core::PolicyKind::ImmediateEviction) {
  cluster::ClusterConfig cfg = base_config(policy, nodes);
  return cfg;
}

Fingerprint run_open(const cluster::ClusterConfig& cfg, std::size_t shards,
                     const std::vector<trace::CoarseTrace>& pool,
                     std::size_t jobs, double demand,
                     std::uint64_t seed = 1998,
                     util::TaskRunner* runner = nullptr,
                     ShardStats* stats_out = nullptr) {
  ShardedClusterSim sim(cfg, shards, pool, table(),
                        rng::Stream(seed).fork("sim"), runner);
  for (std::size_t j = 0; j < jobs; ++j) sim.submit(demand);
  sim.run_until_all_complete(1e6);
  if (stats_out != nullptr) *stats_out = sim.stats();
  return fingerprint(sim);
}

Fingerprint run_closed(const cluster::ClusterConfig& cfg, std::size_t shards,
                       const std::vector<trace::CoarseTrace>& pool,
                       std::size_t jobs, double demand, double duration,
                       std::uint64_t seed = 1998,
                       util::TaskRunner* runner = nullptr) {
  ShardedClusterSim sim(cfg, shards, pool, table(),
                        rng::Stream(seed).fork("sim"), runner);
  sim.set_completion_callback(
      [&sim, demand](const cluster::JobRecord&) { sim.submit(demand); });
  for (std::size_t j = 0; j < jobs; ++j) sim.submit(demand);
  sim.run_for(duration);
  return fingerprint(sim);
}

TEST(ShardedSim, ConstructorRejectsInvalidConfig) {
  const auto pool = test_support::idle_pool(64);
  const cluster::ClusterConfig cfg = base_config(core::PolicyKind::LingerLonger, 4);

  EXPECT_THROW(ShardedClusterSim(cfg, 2, std::vector<trace::CoarseTrace>{},
                                 table(), rng::Stream(1).fork("sim")),
               std::invalid_argument);
  EXPECT_THROW(ShardedClusterSim(cfg, 0, pool, table(),
                                 rng::Stream(1).fork("sim")),
               std::invalid_argument);

  cluster::ClusterConfig zero = cfg;
  zero.node_count = 0;
  EXPECT_THROW(
      ShardedClusterSim(zero, 1, pool, table(), rng::Stream(1).fork("sim")),
      std::invalid_argument);

  cluster::ClusterConfig multi = cfg;
  multi.max_foreign_per_node = 2;
  EXPECT_THROW(
      ShardedClusterSim(multi, 1, pool, table(), rng::Stream(1).fork("sim")),
      std::invalid_argument);
}

TEST(ShardedSim, WindowIsTheConservativeLookahead) {
  const auto pool = test_support::idle_pool(64);
  const cluster::ClusterConfig cfg = base_config(core::PolicyKind::LingerLonger, 4);
  ShardedClusterSim sim(cfg, 2, pool, table(), rng::Stream(1).fork("sim"));
  // W = max(migration cost, trace period): no cross-shard interaction can
  // land earlier than one transfer latency or one trace window.
  EXPECT_GE(sim.window_length(), migration_cost(cfg));
  EXPECT_GE(sim.window_length(), 2.0);
  EXPECT_EQ(sim.shard_count(), 2u);
}

TEST(ShardedSim, OpenRunIsShardCountAndBackendInvariant) {
  const auto pool = churn_pool();
  cluster::ClusterConfig cfg = churn_config(12);
  Fingerprint base;
  bool have_base = false;
  for (const auto backend :
       {des::QueueBackend::kHeap, des::QueueBackend::kCalendar}) {
    cfg.queue = backend;
    for (const std::size_t k : {1u, 2u, 3u, 4u}) {
      SCOPED_TRACE("backend=" + std::to_string(static_cast<int>(backend)) +
                   " shards=" + std::to_string(k));
      const Fingerprint f = run_open(cfg, k, pool, 8, 40.0);
      if (!have_base) {
        base = f;
        have_base = true;
      }
      EXPECT_TRUE(f == base) << "sharded results diverge";
    }
  }
  // The scenario must actually exercise cross-shard coupling, or the
  // invariance above is vacuous.
  EXPECT_GT(base.migrations, 0u);
  EXPECT_EQ(base.completions, 8u);
}

TEST(ShardedSim, ClosedRunIsShardCountInvariant) {
  const auto pool = churn_pool();
  const cluster::ClusterConfig cfg = churn_config(8);
  const Fingerprint one = run_closed(cfg, 1, pool, 6, 25.0, 900.0);
  const Fingerprint four = run_closed(cfg, 4, pool, 6, 25.0, 900.0);
  EXPECT_TRUE(one == four);
  EXPECT_GT(one.completions, 0u);
  EXPECT_DOUBLE_EQ(one.now, 900.0);
}

TEST(ShardedSim, WorkStealingRunnerMatchesSerialExecution) {
  const auto pool = churn_pool();
  const cluster::ClusterConfig cfg = churn_config(16);
  util::TaskRunner runner(3);
  const Fingerprint serial = run_open(cfg, 4, pool, 10, 30.0);
  const Fingerprint parallel = run_open(cfg, 4, pool, 10, 30.0, 1998, &runner);
  EXPECT_TRUE(serial == parallel);
  EXPECT_GT(serial.migrations, 0u);
}

TEST(ShardedSim, RerunsAreByteIdenticalAndSeedSensitive) {
  // randomize_placement makes node setup consume per-node RNG draws (a
  // pattern pool with pinned placement consumes none, so a perturbed seed
  // would legitimately change nothing).
  const auto pool = churn_pool();
  cluster::ClusterConfig cfg = churn_config(10);
  cfg.randomize_placement = true;
  const Fingerprint a = run_open(cfg, 2, pool, 8, 35.0, 4242);
  const Fingerprint b = run_open(cfg, 2, pool, 8, 35.0, 4242);
  EXPECT_TRUE(a == b);
  // Negative control: the engine must not be blind to its seed (mirrors the
  // llverify SEED-INSENSITIVE check).
  const Fingerprint c = run_open(cfg, 2, pool, 8, 35.0, 4243);
  EXPECT_FALSE(a == c) << "sharded run ignores its RNG seed";
}

TEST(ShardedSim, StreamForkOrderDoesNotChangeResults) {
  // fork(label, index) is a pure function of the parent stream, so deriving
  // the sim stream through interleaved decoy forks must not perturb a
  // single draw — the per-entity RNG rule the sharded determinism argument
  // rests on (mirrors llverify's STREAM-DEPENDENT check).
  const auto pool = churn_pool();
  const cluster::ClusterConfig cfg = churn_config(10);
  const rng::Stream master(1998);
  const rng::Stream plain = master.fork("sim");
  (void)master.fork("decoy-a");
  (void)master.fork("decoy-b", 7);
  const rng::Stream reordered = master.fork("sim");

  auto run_with = [&](const rng::Stream& stream) {
    ShardedClusterSim sim(cfg, 3, pool, table(), stream);
    for (std::size_t j = 0; j < 8; ++j) sim.submit(35.0);
    sim.run_until_all_complete(1e6);
    return fingerprint(sim);
  };
  EXPECT_TRUE(run_with(plain) == run_with(reordered));
}

TEST(ShardedSim, WindowBoundaryArrivalsDrainAtTheBarrier) {
  // Cross-shard transfers launch at a window edge and take exactly W (the
  // window length), so every arrival lands precisely ON the next barrier —
  // the canonical boundary case. All mailbox traffic must be delivered by
  // the time the run quiesces, none dropped or left queued.
  const auto pool = churn_pool();
  const cluster::ClusterConfig cfg = churn_config(12);
  ShardStats stats;
  const Fingerprint f =
      run_open(cfg, 2, pool, 8, 40.0, 1998, nullptr, &stats);
  EXPECT_GT(f.migrations, 0u);
  EXPECT_GT(stats.windows, 0u);
  EXPECT_GT(stats.mailbox_sent, 0u);
  EXPECT_EQ(stats.mailbox_delivered, stats.mailbox_sent)
      << "mailbox messages lost across window barriers";
}

TEST(ShardedSim, MigrationIntoCrashedNodeIsRequeuedInvariantly) {
  // Node crashes land mid-window while migrations are in flight toward the
  // victims; the coordinator must roll the transfer back into the queue at
  // the barrier. The outcome (restarts, lost work, goodput) has to be
  // bit-identical no matter how the crash site and the migration source are
  // sharded.
  const auto pool = churn_pool();
  cluster::ClusterConfig cfg = churn_config(10);
  cfg.faults.crash.arrivals = fault::ArrivalProcess::exponential(1.0 / 40.0);
  cfg.faults.crash.mean_downtime = 60.0;
  cfg.faults.horizon = 4000.0;

  const Fingerprint one = run_open(cfg, 1, pool, 8, 40.0);
  const Fingerprint three = run_open(cfg, 3, pool, 8, 40.0);
  EXPECT_TRUE(one == three);
  EXPECT_GT(one.crashes, 0u) << "fault plan injected no crashes";
  EXPECT_GT(one.restarts + one.aborts, 0u)
      << "no migration/occupant ever collided with a down node";
  EXPECT_EQ(one.completions, 8u) << "requeued jobs must still finish";
}

TEST(ShardedSim, EmptyShardWindowsAreSkipped) {
  // More shards than nodes: the excess shards own empty slices. Their
  // windows are skipped (counted in stats), and the results still match a
  // single-shard run exactly.
  const auto pool = churn_pool();
  const cluster::ClusterConfig cfg = churn_config(3);
  ShardStats stats;
  const Fingerprint eight =
      run_open(cfg, 8, pool, 4, 30.0, 1998, nullptr, &stats);
  const Fingerprint one = run_open(cfg, 1, pool, 4, 30.0);
  EXPECT_TRUE(eight == one);
  EXPECT_GT(stats.empty_windows, 0u);
  EXPECT_EQ(eight.completions, 4u);
}

TEST(ShardedSim, MetricsAndTracerAreObservational) {
  const auto pool = churn_pool();
  const cluster::ClusterConfig cfg = churn_config(8);
  const Fingerprint bare = run_open(cfg, 2, pool, 6, 30.0);

  obs::MetricRegistry registry;
  obs::Tracer tracer;
  ShardedClusterSim sim(cfg, 2, pool, table(), rng::Stream(1998).fork("sim"));
  sim.set_metrics(&registry);
  sim.set_tracer(&tracer);
  for (std::size_t j = 0; j < 6; ++j) sim.submit(30.0);
  sim.run_until_all_complete(1e6);
  EXPECT_TRUE(fingerprint(sim) == bare)
      << "attaching metrics/tracer changed simulated results";

  // The published counters must agree with the engine's own accounting.
  double windows = -1.0;
  double sent = -1.0;
  double delivered = -1.0;
  for (const obs::MetricSample& s : registry.snapshot(sim.now())) {
    if (s.name == "shard.windows") windows = s.value;
    if (s.name == "shard.mailbox.sent") sent = s.value;
    if (s.name == "shard.mailbox.delivered") delivered = s.value;
  }
  const ShardStats& stats = sim.stats();
  EXPECT_EQ(windows, static_cast<double>(stats.windows));
  EXPECT_EQ(sent, static_cast<double>(stats.mailbox_sent));
  EXPECT_EQ(delivered, static_cast<double>(stats.mailbox_delivered));
}

TEST(ShardedSim, NodeViewExposesQuiescentOccupancy) {
  const auto pool = test_support::idle_pool(256);
  const cluster::ClusterConfig cfg = base_config(core::PolicyKind::LingerLonger, 4);
  ShardedClusterSim sim(cfg, 2, pool, table(), rng::Stream(7).fork("sim"));
  const cluster::JobId id = sim.submit(5.0);
  // Placement is immediate between runs, as in the monolithic engine.
  std::size_t occupied = 0;
  for (std::size_t i = 0; i < sim.node_count(); ++i) {
    const auto view = sim.node_view(i);
    if (view.occupant != ShardedClusterSim::kNoJob) {
      ++occupied;
      EXPECT_EQ(view.occupant, id);
    }
    EXPECT_FALSE(view.down);
  }
  EXPECT_EQ(occupied, 1u);
  sim.run_until_all_complete(1e6);
  for (std::size_t i = 0; i < sim.node_count(); ++i) {
    EXPECT_EQ(sim.node_view(i).occupant, ShardedClusterSim::kNoJob);
  }
  EXPECT_EQ(sim.incomplete_jobs(), 0u);
}

}  // namespace
}  // namespace ll::shard
