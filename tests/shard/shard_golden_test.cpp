/// Golden-digest regression suite for the sharded scenario runs. The five
/// cluster-backed verification scenarios have their sharded-model digests
/// pinned under tests/golden/<name>.shards.golden; one file per scenario
/// covers EVERY shard count and queue backend, because the sharded engine's
/// determinism contract makes the digest invariant in both. Scenarios that
/// build no cluster must keep matching their base goldens with the shard
/// option set — the option is a no-op for them.
///
/// Regenerate after an intended behavior change with
/// `llverify --write-golden tests/golden --shards 2` (the base goldens are
/// rewritten byte-identically; review the .shards.golden diff).

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "verify/scenarios.hpp"

#ifndef LL_GOLDEN_DIR
#error "LL_GOLDEN_DIR must point at the committed golden digests"
#endif

namespace ll::verify {
namespace {

struct GoldenEntry {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
};

GoldenEntry read_golden(const std::string& name, bool sharded) {
  const std::string path = std::string(LL_GOLDEN_DIR) + "/" + name +
                           (sharded ? ".shards.golden" : ".golden");
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate: llverify --write-golden "
                            "tests/golden --shards 2)";
  std::string hex;
  GoldenEntry entry;
  in >> hex >> entry.events;
  const auto parsed = Digest::parse_hex(hex);
  EXPECT_TRUE(parsed.has_value()) << "malformed digest in " << path;
  entry.digest = parsed.value_or(0);
  return entry;
}

TEST(ShardGoldenScenarios, ShardedScenariosExist) {
  std::size_t sharded = 0;
  for (const auto& s : scenarios()) {
    if (scenario_sharded(s)) ++sharded;
  }
  // Every cluster- and fault-module scenario runs on the sharded engine.
  EXPECT_GE(sharded, 5u);
}

TEST(ShardGoldenScenarios, DigestsMatchShardedGoldensAcrossShardCounts) {
  // The pinned contract: one golden file per scenario is reproduced
  // byte-for-byte at every shard count. K = 1 included — the serial sharded
  // run is the same model, just never parallel.
  for (const auto& scenario : scenarios()) {
    if (!scenario_sharded(scenario)) continue;
    SCOPED_TRACE(scenario.name);
    const GoldenEntry golden = read_golden(scenario.name, /*sharded=*/true);
    for (const std::size_t k : {1u, 2u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(k));
      ScenarioOptions options;  // kGoldenSeed, kCount
      options.shards = k;
      const ScenarioResult result = scenario.run(options);
      EXPECT_EQ(result.digest.value(), golden.digest)
          << "sharded digest drift: got " << result.digest.hex();
      EXPECT_EQ(result.events, golden.events);
      EXPECT_EQ(result.violations, 0u);
    }
  }
}

TEST(ShardGoldenScenarios, CalendarBackendMatchesShardedGoldens) {
  // Backend invariance holds inside each shard's private engine too: the
  // calendar queue must reproduce the (heap-generated) sharded goldens.
  for (const auto& scenario : scenarios()) {
    if (!scenario_sharded(scenario)) continue;
    SCOPED_TRACE(scenario.name);
    const GoldenEntry golden = read_golden(scenario.name, /*sharded=*/true);
    ScenarioOptions options;
    options.shards = 2;
    options.queue = des::QueueBackend::kCalendar;
    const ScenarioResult result = scenario.run(options);
    EXPECT_EQ(result.digest.value(), golden.digest)
        << "calendar-backend sharded digest drift: got "
        << result.digest.hex();
    EXPECT_EQ(result.events, golden.events);
    EXPECT_EQ(result.violations, 0u);
  }
}

TEST(ShardGoldenScenarios, NonShardedScenariosIgnoreTheShardOption) {
  // Scenarios that construct no cluster must match their BASE goldens with
  // options.shards set — the flag is a strict no-op for them, which is what
  // lets `llverify --shards K` run the full registry.
  for (const auto& scenario : scenarios()) {
    if (scenario_sharded(scenario)) continue;
    SCOPED_TRACE(scenario.name);
    const GoldenEntry golden = read_golden(scenario.name, /*sharded=*/false);
    ScenarioOptions options;
    options.shards = 4;
    const ScenarioResult result = scenario.run(options);
    EXPECT_EQ(result.digest.value(), golden.digest)
        << "shard option perturbed a non-cluster scenario: got "
        << result.digest.hex();
    EXPECT_EQ(result.events, golden.events);
    EXPECT_EQ(result.violations, 0u);
  }
}

TEST(ShardGoldenScenarios, ShardCountInvarianceHoldsAtArbitrarySeeds) {
  // The pinned files prove invariance at kGoldenSeed; this proves it is a
  // property of the model, not of one lucky seed (mirrors the llverify
  // SHARD-COUNT-DEPENDENT differential check).
  for (const auto& scenario : scenarios()) {
    if (!scenario_sharded(scenario)) continue;
    SCOPED_TRACE(scenario.name);
    ScenarioOptions a;
    a.seed = 20260808;
    a.shards = 1;
    ScenarioOptions b = a;
    b.shards = 3;
    const ScenarioResult ra = scenario.run(a);
    const ScenarioResult rb = scenario.run(b);
    EXPECT_EQ(ra.digest.value(), rb.digest.value())
        << "digest depends on shard count at a non-golden seed";
    EXPECT_EQ(ra.events, rb.events);
  }
}

TEST(ShardGoldenScenarios, ShardedDigestsDifferFromMonolithDigests) {
  // The sharded model is window-granular, not an event-for-event replica of
  // the monolith — its goldens are pinned separately ON PURPOSE. If the two
  // files ever collapse to the same digest, the separate-file machinery is
  // probably pinning the wrong run.
  for (const auto& scenario : scenarios()) {
    if (!scenario_sharded(scenario)) continue;
    SCOPED_TRACE(scenario.name);
    const GoldenEntry base = read_golden(scenario.name, /*sharded=*/false);
    const GoldenEntry sharded = read_golden(scenario.name, /*sharded=*/true);
    EXPECT_NE(base.digest, sharded.digest);
  }
}

}  // namespace
}  // namespace ll::verify
