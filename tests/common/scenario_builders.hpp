#pragma once

/// \file scenario_builders.hpp
/// Shared scenario-building helpers for the cluster, integration and
/// verification test suites. These used to be copy-pasted per test file;
/// keeping one copy here means a pattern-trace or base-config tweak reaches
/// every suite (including the golden-trace tests) at once.

#include <string>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "cluster/experiment.hpp"
#include "workload/burst_table.hpp"

namespace ll::test_support {

/// One quiet window flips the machine idle: recruitment effects are tested
/// in the trace suite; scenario tests want precise per-window control of the
/// idle flag.
inline constexpr trace::RecruitmentRule kInstantRule{0.1, 2.0};

/// Builds a trace from a pattern string: '.' = idle window (cpu 0),
/// 'B' = busy window (cpu = busy_util). The final character repeats forever
/// via trace wrap-around only if the caller makes the trace long enough —
/// so patterns are usually padded.
inline trace::CoarseTrace pattern_trace(const std::string& pattern,
                                        double busy_util = 0.5,
                                        std::int32_t mem_free = 65536) {
  trace::CoarseTrace t(2.0);
  for (char c : pattern) {
    t.push({c == 'B' ? busy_util : 0.0, mem_free, false});
  }
  return t;
}

/// Pool where every node replays the same pattern (offset 0 is not
/// guaranteed unless randomize_placement is off, so tests that need aligned
/// phases use one-window patterns or constant traces).
inline std::vector<trace::CoarseTrace> uniform_pool(const std::string& pattern,
                                                    double busy_util = 0.5) {
  return {pattern_trace(pattern, busy_util)};
}

/// A single always-idle trace, long enough for multi-wave experiments.
inline std::vector<trace::CoarseTrace> idle_pool(std::size_t windows = 4000) {
  trace::CoarseTrace t(2.0);
  for (std::size_t i = 0; i < windows; ++i) t.push({0.0, 65536, false});
  return {t};
}

/// Canonical test cluster: instant recruitment, small (fast) migrations,
/// node i pinned to pool[i % n] at offset 0 for pattern-driven scenarios.
inline cluster::ClusterConfig base_config(core::PolicyKind policy,
                                          std::size_t nodes) {
  cluster::ClusterConfig cfg;
  cfg.node_count = nodes;
  cfg.policy = policy;
  cfg.recruitment = kInstantRule;
  cfg.job_bytes = 1ull << 20;  // ~3.4 s migrations keep tests fast
  cfg.randomize_placement = false;
  return cfg;
}

inline double migration_cost(const cluster::ClusterConfig& cfg) {
  return cfg.migration.cost(cfg.job_bytes);
}

/// Canonical small experiment for the experiment-driver tests.
inline cluster::ExperimentConfig small_experiment(core::PolicyKind policy) {
  cluster::ExperimentConfig cfg;
  cfg.cluster.node_count = 4;
  cfg.cluster.policy = policy;
  cfg.cluster.recruitment = kInstantRule;
  cfg.cluster.job_bytes = 1ull << 20;
  cfg.workload = cluster::WorkloadSpec{8, 20.0};
  cfg.seed = 99;
  return cfg;
}

inline const workload::BurstTable& table() {
  return workload::default_burst_table();
}

}  // namespace ll::test_support
