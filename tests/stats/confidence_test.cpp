#include "stats/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/rng.hpp"

namespace ll::stats {
namespace {

TEST(TCritical, KnownValues) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(10), 2.228, 1e-3);
  EXPECT_NEAR(t_critical_95(30), 2.042, 1e-3);
}

TEST(TCritical, AsymptoticTail) {
  EXPECT_NEAR(t_critical_95(1000), 1.960, 1e-3);
  EXPECT_GT(t_critical_95(35), t_critical_95(1000));
}

TEST(TCritical, ZeroDofThrows) {
  EXPECT_THROW((void)(t_critical_95(0)), std::invalid_argument);
}

TEST(TCritical, MonotoneNonIncreasing) {
  double prev = t_critical_95(1);
  for (std::size_t df = 2; df <= 200; ++df) {
    const double cur = t_critical_95(df);
    EXPECT_LE(cur, prev + 1e-12) << "df=" << df;
    prev = cur;
  }
}

TEST(MeanConfidence, EmptyYieldsZeroInterval) {
  const auto ci = mean_confidence_95({});
  EXPECT_DOUBLE_EQ(ci.mean, 0.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
  EXPECT_EQ(ci.n, 0u);
}

TEST(MeanConfidence, SingleSampleZeroWidth) {
  const auto ci = mean_confidence_95({4.2});
  EXPECT_DOUBLE_EQ(ci.mean, 4.2);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
  EXPECT_EQ(ci.n, 1u);
}

TEST(MeanConfidence, TwoSamplesUseT1) {
  // n = 2: mean 2, sample sd sqrt(2), se 1, df 1 -> half width = 12.706.
  const auto ci = mean_confidence_95({1.0, 3.0});
  EXPECT_DOUBLE_EQ(ci.mean, 2.0);
  EXPECT_NEAR(ci.half_width, 12.706, 1e-3);
  EXPECT_EQ(ci.n, 2u);
}

TEST(MeanConfidence, KnownSmallSample) {
  // mean 3, sample sd 1, n = 3 -> half width = 4.303 / sqrt(3).
  const auto ci = mean_confidence_95({2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_NEAR(ci.half_width, 4.303 / std::sqrt(3.0), 1e-3);
  EXPECT_NEAR(ci.lo(), 3.0 - ci.half_width, 1e-12);
  EXPECT_NEAR(ci.hi(), 3.0 + ci.half_width, 1e-12);
}

TEST(MeanConfidence, CoverageApproximately95Percent) {
  // Draw many size-10 samples from U(0,1); the CI should contain the true
  // mean 0.5 about 95% of the time.
  rng::Stream stream(77);
  int covered = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> sample;
    for (int i = 0; i < 10; ++i) sample.push_back(stream.uniform01());
    const auto ci = mean_confidence_95(sample);
    if (ci.lo() <= 0.5 && 0.5 <= ci.hi()) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.92);
  EXPECT_LT(coverage, 0.98);
}

TEST(MeanConfidence, WidthShrinksWithN) {
  rng::Stream stream(78);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 8; ++i) small.push_back(stream.uniform01());
  for (int i = 0; i < 128; ++i) large.push_back(stream.uniform01());
  EXPECT_GT(mean_confidence_95(small).half_width,
            mean_confidence_95(large).half_width);
}

}  // namespace
}  // namespace ll::stats
