#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/rng.hpp"

namespace ll::stats {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Summary, KnownValues) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, SampleVarianceUsesBessel) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
}

TEST(Summary, CvIsStddevOverMean) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cv(), 2.0 / 5.0);
}

TEST(Summary, CvZeroWhenMeanZero) {
  Summary s;
  s.add(1.0);
  s.add(-1.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Summary, WeightedMean) {
  Summary s;
  s.add_weighted(10.0, 3.0);
  s.add_weighted(0.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.weight(), 4.0);
}

TEST(Summary, ZeroWeightIgnored) {
  Summary s;
  s.add(1.0);
  s.add_weighted(100.0, 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
  EXPECT_EQ(s.count(), 1u);
}

TEST(Summary, NegativeWeightThrows) {
  Summary s;
  EXPECT_THROW((void)(s.add_weighted(1.0, -1.0)), std::invalid_argument);
}

TEST(Summary, MergeMatchesSequential) {
  rng::Stream stream(9);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(stream.uniform(-3.0, 10.0));

  Summary whole;
  for (double x : values) whole.add(x);

  Summary left;
  Summary right;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i < 400 ? left : right).add(values[i]);
  }
  left.merge(right);

  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(3.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);

  Summary b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Summary, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: huge mean, small variance.
  Summary s;
  const double base = 1e9;
  for (double x : {base + 1.0, base + 2.0, base + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), base + 2.0, 1e-6);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

}  // namespace
}  // namespace ll::stats
