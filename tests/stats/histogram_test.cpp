#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace ll::stats {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW((void)(Histogram(1.0, 1.0, 10)), std::invalid_argument);
  EXPECT_THROW((void)(Histogram(2.0, 1.0, 10)), std::invalid_argument);
  EXPECT_THROW((void)(Histogram(0.0, 1.0, 0)), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(5.9);
  h.add(9.99);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(5), 2u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi edge is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(1.0, 3.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 1.5);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 2.25);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 3.0);
}

TEST(Histogram, CumulativeFraction) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(2.5);
  h.add(3.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(3), 1.0);
}

TEST(Histogram, CumulativeIncludesUnderflow) {
  Histogram h(0.0, 4.0, 4);
  h.add(-1.0);
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 1.0);
}

TEST(Histogram, CumulativeOutOfRangeThrows) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  EXPECT_THROW((void)(h.cumulative_fraction(2)), std::out_of_range);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(0.05 + 0.0999 * i * 1.0);
  // Uniform over [0, 10): median near 5.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.6);
  EXPECT_NEAR(h.quantile(0.1), 1.0, 0.6);
  EXPECT_NEAR(h.quantile(0.9), 9.0, 0.6);
}

TEST(Histogram, QuantileEmptyThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)(h.quantile(0.5)), std::logic_error);
}

TEST(Histogram, QuantileRangeChecked) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  EXPECT_THROW((void)(h.quantile(-0.1)), std::invalid_argument);
  EXPECT_THROW((void)(h.quantile(1.1)), std::invalid_argument);
}

TEST(Histogram, ValueAtHiBoundaryGoesToOverflow) {
  Histogram h(0.0, 1.0, 10);
  h.add(1.0);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, NanSampleThrowsInsteadOfVanishing) {
  // A NaN sample used to fall through both range comparisons and silently
  // land in a bin-selection expression with undefined result; now it is
  // rejected at the door so the total count stays meaningful.
  Histogram h(0.0, 1.0, 10);
  EXPECT_THROW(h.add(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, NanQuantileThrows) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.5);
  // The in-range guard is written negated (!(q >= 0 && q <= 1)) so NaN —
  // for which every comparison is false — takes the throw path too.
  EXPECT_THROW((void)(h.quantile(std::numeric_limits<double>::quiet_NaN())),
               std::invalid_argument);
}

TEST(Histogram, BoundaryQuantilesAreDefined) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  // q=0 and q=1 are valid and land on the extreme bins, never UB.
  EXPECT_LE(h.quantile(0.0), h.quantile(1.0));
  EXPECT_GE(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(1.0), 10.0);
}

}  // namespace
}  // namespace ll::stats
