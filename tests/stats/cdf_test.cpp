#include "stats/cdf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace ll::stats {
namespace {

TEST(EmpiricalCdf, EmptyThrows) {
  EXPECT_THROW((void)(EmpiricalCdf({})), std::invalid_argument);
}

TEST(EmpiricalCdf, EvaluatesStepFunction) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(100.0), 1.0);
}

TEST(EmpiricalCdf, HandlesDuplicates) {
  EmpiricalCdf cdf({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf(1.9), 0.0);
}

TEST(EmpiricalCdf, Quantiles) {
  EmpiricalCdf cdf({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.01), 10.0);
}

TEST(EmpiricalCdf, QuantileRangeChecked) {
  EmpiricalCdf cdf({1.0});
  EXPECT_THROW((void)(cdf.quantile(0.0)), std::invalid_argument);
  EXPECT_THROW((void)(cdf.quantile(1.5)), std::invalid_argument);
}

TEST(EmpiricalCdf, MinMaxSorted) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
  EXPECT_TRUE(std::is_sorted(cdf.sorted_samples().begin(),
                             cdf.sorted_samples().end()));
}

TEST(EmpiricalCdf, KsDistanceZeroAgainstSelfSteps) {
  // Against its own step function evaluated slightly right of each sample,
  // the distance is bounded by 1/n.
  std::vector<double> samples{1.0, 2.0, 3.0, 4.0, 5.0};
  EmpiricalCdf cdf(samples);
  const double d = cdf.ks_distance([&cdf](double x) { return cdf(x); });
  EXPECT_LE(d, 1.0 / 5.0 + 1e-12);
}

TEST(EmpiricalCdf, KsDetectsWrongDistribution) {
  rng::Exponential e(1.0);
  rng::Stream s(3);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(e.sample(s));
  EmpiricalCdf cdf(samples);
  // Right distribution: small distance.
  EXPECT_LT(cdf.ks_distance([&e](double x) { return e.cdf(x); }), 0.02);
  // Wrong rate: big distance.
  rng::Exponential wrong(3.0);
  EXPECT_GT(cdf.ks_distance([&wrong](double x) { return wrong.cdf(x); }), 0.2);
}

TEST(EmpiricalCdf, TwoSampleKsSmallForSameSource) {
  rng::Exponential e(2.0);
  rng::Stream s(4);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 20000; ++i) a.push_back(e.sample(s));
  for (int i = 0; i < 20000; ++i) b.push_back(e.sample(s));
  EXPECT_LT(EmpiricalCdf(a).ks_distance(EmpiricalCdf(b)), 0.025);
}

TEST(EmpiricalCdf, TwoSampleKsLargeForDifferentSources) {
  rng::Exponential e1(1.0);
  rng::Exponential e2(4.0);
  rng::Stream s(5);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 10000; ++i) a.push_back(e1.sample(s));
  for (int i = 0; i < 10000; ++i) b.push_back(e2.sample(s));
  EXPECT_GT(EmpiricalCdf(a).ks_distance(EmpiricalCdf(b)), 0.3);
}

TEST(EmpiricalCdf, NanQuantileThrows) {
  // The guard is written negated (!(q > 0 && q <= 1)), so a NaN q — every
  // comparison false — throws instead of selecting an arbitrary index.
  EmpiricalCdf cdf({1.0, 2.0, 3.0});
  EXPECT_THROW((void)(cdf.quantile(std::numeric_limits<double>::quiet_NaN())),
               std::invalid_argument);
  EXPECT_THROW((void)(cdf.quantile(0.0)), std::invalid_argument);  // (0,1]
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 3.0);
}

}  // namespace
}  // namespace ll::stats
