#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ll::core {
namespace {

TEST(MigrationCost, PaperConfiguration) {
  // 8 MB image over an effective 3 Mbps link plus endpoint processing.
  MigrationCostModel m;
  const double cost = m.cost(8ull << 20);
  const double transfer = 8.0 * 8.0 * 1024 * 1024 / 3e6;
  EXPECT_NEAR(cost, 0.6 + transfer, 1e-9);
  EXPECT_GT(cost, 20.0);  // the paper's ~23 s migration
  EXPECT_LT(cost, 25.0);
}

TEST(MigrationCost, ZeroBytesIsProcessingOnly) {
  MigrationCostModel m;
  EXPECT_DOUBLE_EQ(m.cost(0), m.processing_source + m.processing_destination);
}

TEST(MigrationCost, ScalesLinearlyInSize) {
  MigrationCostModel m;
  const double c1 = m.cost(1 << 20);
  const double c2 = m.cost(2 << 20);
  EXPECT_NEAR(c2 - c1, 8.0 * 1024 * 1024 / 3e6, 1e-9);
}

TEST(MigrationCost, BadBandwidthThrows) {
  MigrationCostModel m;
  m.bandwidth_bps = 0.0;
  EXPECT_THROW((void)(m.cost(1024)), std::logic_error);
}

TEST(LingerDuration, PaperFormula) {
  // T_lingr = (1-l)/(h-l) * T_migr
  EXPECT_NEAR(linger_duration(0.5, 0.0, 10.0), 2.0 * 10.0, 1e-12);
  EXPECT_NEAR(linger_duration(0.3, 0.1, 23.0), (0.9 / 0.2) * 23.0, 1e-12);
}

TEST(LingerDuration, InfiniteWhenDestinationNoBetter) {
  EXPECT_TRUE(std::isinf(linger_duration(0.2, 0.2, 10.0)));
  EXPECT_TRUE(std::isinf(linger_duration(0.1, 0.3, 10.0)));
}

TEST(LingerDuration, ZeroMigrationCostMigratesImmediately) {
  EXPECT_DOUBLE_EQ(linger_duration(0.5, 0.05, 0.0), 0.0);
}

TEST(LingerDuration, GrowsAsUtilizationsConverge) {
  // The closer h is to l, the less migration buys, the longer the linger.
  const double t_far = linger_duration(0.8, 0.05, 10.0);
  const double t_near = linger_duration(0.15, 0.05, 10.0);
  EXPECT_LT(t_far, t_near);
}

TEST(LingerDuration, DecreasesInSourceLoad) {
  // Busier source node => migration pays off sooner.
  double prev = linger_duration(0.2, 0.05, 20.0);
  for (double h : {0.3, 0.5, 0.7, 0.9}) {
    const double cur = linger_duration(h, 0.05, 20.0);
    EXPECT_LT(cur, prev) << h;
    prev = cur;
  }
}

TEST(LingerDuration, RejectsBadInputs) {
  EXPECT_THROW((void)(linger_duration(-0.1, 0.0, 1.0)), std::invalid_argument);
  EXPECT_THROW((void)(linger_duration(1.1, 0.0, 1.0)), std::invalid_argument);
  EXPECT_THROW((void)(linger_duration(0.5, -0.1, 1.0)), std::invalid_argument);
  EXPECT_THROW((void)(linger_duration(0.5, 0.0, -1.0)), std::invalid_argument);
}

TEST(MinBeneficialEpisode, AddsLingerSoFar) {
  const double tail = linger_duration(0.5, 0.1, 10.0);
  EXPECT_NEAR(min_beneficial_episode(0.5, 0.1, 10.0, 7.0), 7.0 + tail, 1e-12);
  EXPECT_THROW((void)(min_beneficial_episode(0.5, 0.1, 10.0, -1.0)),
               std::invalid_argument);
}

TEST(MinBeneficialEpisode, ConsistentWithLingerRule) {
  // At the moment the linger deadline expires (age == T_lingr), the 2T
  // prediction says the episode will last 2*T_lingr total, which is exactly
  // the break-even episode length: T_lingr + (1-l)/(h-l)*T_migr = 2*T_lingr.
  const double h = 0.4;
  const double l = 0.05;
  const double migr = 23.0;
  const double t_lingr = linger_duration(h, l, migr);
  EXPECT_NEAR(min_beneficial_episode(h, l, migr, t_lingr), 2.0 * t_lingr, 1e-9);
  EXPECT_NEAR(predict_episode_total(t_lingr), 2.0 * t_lingr, 1e-12);
}

TEST(Predictor, MedianRemainingLife) {
  EXPECT_DOUBLE_EQ(predict_episode_total(0.0), 0.0);
  EXPECT_DOUBLE_EQ(predict_episode_total(30.0), 60.0);
  EXPECT_THROW((void)(predict_episode_total(-1.0)), std::invalid_argument);
}

}  // namespace
}  // namespace ll::core
