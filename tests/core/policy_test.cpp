#include "core/policy.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ll::core {
namespace {

PolicyContext ctx_of(double age, double h = 0.3, double l = 0.05,
                     double migr = 23.0) {
  PolicyContext c;
  c.episode_age = age;
  c.node_utilization = h;
  c.idle_utilization = l;
  c.migration_cost = migr;
  return c;
}

TEST(PolicyNames, RoundTrip) {
  EXPECT_EQ(to_string(PolicyKind::LingerLonger), "LL");
  EXPECT_EQ(to_string(PolicyKind::LingerForever), "LF");
  EXPECT_EQ(to_string(PolicyKind::ImmediateEviction), "IE");
  EXPECT_EQ(to_string(PolicyKind::PauseAndMigrate), "PM");
}

TEST(PolicyFactory, CreatesEachKindWithMatchingName) {
  for (PolicyKind kind :
       {PolicyKind::LingerLonger, PolicyKind::LingerForever,
        PolicyKind::ImmediateEviction, PolicyKind::PauseAndMigrate}) {
    const auto policy = make_policy(kind);
    EXPECT_EQ(policy->kind(), kind);
    EXPECT_EQ(policy->name(), to_string(kind));
  }
}

TEST(PolicyFactory, LingeringPermissions) {
  EXPECT_TRUE(make_policy(PolicyKind::LingerLonger)->allows_lingering());
  EXPECT_TRUE(make_policy(PolicyKind::LingerForever)->allows_lingering());
  EXPECT_FALSE(make_policy(PolicyKind::ImmediateEviction)->allows_lingering());
  EXPECT_FALSE(make_policy(PolicyKind::PauseAndMigrate)->allows_lingering());
}

TEST(ImmediateEviction, AlwaysMigrates) {
  const auto policy = make_policy(PolicyKind::ImmediateEviction);
  for (double age : {0.0, 1.0, 100.0}) {
    EXPECT_EQ(policy->on_nonidle(ctx_of(age)).action,
              Decision::Action::Migrate);
  }
}

TEST(LingerForever, AlwaysContinues) {
  const auto policy = make_policy(PolicyKind::LingerForever);
  for (double age : {0.0, 1e6}) {
    EXPECT_EQ(policy->on_nonidle(ctx_of(age)).action,
              Decision::Action::Continue);
  }
}

TEST(PauseAndMigrate, PausesThenMigrates) {
  PolicyParams params;
  params.pause_time = 60.0;
  const auto policy = make_policy(PolicyKind::PauseAndMigrate, params);

  const Decision early = policy->on_nonidle(ctx_of(10.0));
  EXPECT_EQ(early.action, Decision::Action::Pause);
  EXPECT_NEAR(early.recheck_in, 50.0, 1e-9);

  const Decision late = policy->on_nonidle(ctx_of(60.0));
  EXPECT_EQ(late.action, Decision::Action::Migrate);
  EXPECT_EQ(policy->on_nonidle(ctx_of(120.0)).action,
            Decision::Action::Migrate);
}

TEST(PauseAndMigrate, RejectsNonPositivePause) {
  PolicyParams params;
  params.pause_time = 0.0;
  EXPECT_THROW(make_policy(PolicyKind::PauseAndMigrate, params),
               std::invalid_argument);
}

TEST(LingerLonger, LingersUntilCostModelDeadline) {
  const auto policy = make_policy(PolicyKind::LingerLonger);
  const double t_lingr = linger_duration(0.3, 0.05, 23.0);

  const Decision early = policy->on_nonidle(ctx_of(0.0));
  EXPECT_EQ(early.action, Decision::Action::Linger);
  EXPECT_NEAR(early.recheck_in, t_lingr, 1e-9);

  const Decision mid = policy->on_nonidle(ctx_of(t_lingr / 2));
  EXPECT_EQ(mid.action, Decision::Action::Linger);
  EXPECT_NEAR(mid.recheck_in, t_lingr / 2, 1e-9);

  EXPECT_EQ(policy->on_nonidle(ctx_of(t_lingr)).action,
            Decision::Action::Migrate);
  EXPECT_EQ(policy->on_nonidle(ctx_of(t_lingr * 3)).action,
            Decision::Action::Migrate);
}

TEST(LingerLonger, NeverMigratesTowardEqualOrBusierNodes) {
  const auto policy = make_policy(PolicyKind::LingerLonger);
  // h <= l: migration can't pay off; policy lingers and asks to re-check.
  const Decision d = policy->on_nonidle(ctx_of(1000.0, 0.05, 0.10));
  EXPECT_EQ(d.action, Decision::Action::Linger);
  EXPECT_GT(d.recheck_in, 0.0);
}

TEST(LingerLonger, BusierNodesMigrateSooner) {
  const auto policy = make_policy(PolicyKind::LingerLonger);
  // At age 60s with migration cost 23s: a 90%-utilized node has
  // T_lingr = (0.95/0.85)*23 ~ 25.7s < 60 -> migrate; a 15%-utilized node has
  // T_lingr = (0.95/0.10)*23 ~ 218s -> keep lingering.
  EXPECT_EQ(policy->on_nonidle(ctx_of(60.0, 0.9)).action,
            Decision::Action::Migrate);
  EXPECT_EQ(policy->on_nonidle(ctx_of(60.0, 0.15)).action,
            Decision::Action::Linger);
}

TEST(LingerLonger, ZeroMigrationCostMigratesImmediately) {
  const auto policy = make_policy(PolicyKind::LingerLonger);
  EXPECT_EQ(policy->on_nonidle(ctx_of(0.0, 0.3, 0.05, 0.0)).action,
            Decision::Action::Migrate);
}

TEST(LingerLonger, LingerScaleStretchesDeadline) {
  PolicyParams eager;
  eager.linger_scale = 0.0;
  const auto now = make_policy(PolicyKind::LingerLonger, eager);
  EXPECT_EQ(now->on_nonidle(ctx_of(0.0)).action, Decision::Action::Migrate);

  PolicyParams patient;
  patient.linger_scale = 2.0;
  const auto later = make_policy(PolicyKind::LingerLonger, patient);
  const double t_lingr = linger_duration(0.3, 0.05, 23.0);
  EXPECT_EQ(later->on_nonidle(ctx_of(1.5 * t_lingr)).action,
            Decision::Action::Linger);
  EXPECT_EQ(later->on_nonidle(ctx_of(2.0 * t_lingr)).action,
            Decision::Action::Migrate);
}

TEST(LingerLonger, ScaleZeroWithHopelessDestinationStillLingers) {
  PolicyParams eager;
  eager.linger_scale = 0.0;
  const auto policy = make_policy(PolicyKind::LingerLonger, eager);
  // h <= l: no destination is better, regardless of eagerness.
  EXPECT_EQ(policy->on_nonidle(ctx_of(100.0, 0.05, 0.1)).action,
            Decision::Action::Linger);
}

TEST(LingerLonger, NegativeScaleThrows) {
  PolicyParams bad;
  bad.linger_scale = -1.0;
  EXPECT_THROW(make_policy(PolicyKind::LingerLonger, bad),
               std::invalid_argument);
}

TEST(OracleLinger, MigratesExactlyWhenRemainingExceedsTail) {
  const auto policy = make_policy(PolicyKind::OracleLinger);
  const double tail = linger_duration(0.3, 0.05, 23.0);

  PolicyContext long_episode = ctx_of(5.0);
  long_episode.episode_remaining = tail * 2.0;
  EXPECT_EQ(policy->on_nonidle(long_episode).action,
            Decision::Action::Migrate);

  PolicyContext short_episode = ctx_of(5.0);
  short_episode.episode_remaining = tail * 0.5;
  EXPECT_EQ(policy->on_nonidle(short_episode).action,
            Decision::Action::Continue);
}

TEST(OracleLinger, UnknownRemainingNeverMigrates) {
  const auto policy = make_policy(PolicyKind::OracleLinger);
  // Default context: episode_remaining is infinity = unknown.
  EXPECT_EQ(policy->on_nonidle(ctx_of(1e6)).action,
            Decision::Action::Continue);
}

TEST(OracleLinger, HopelessDestinationContinues) {
  const auto policy = make_policy(PolicyKind::OracleLinger);
  PolicyContext ctx = ctx_of(5.0, /*h=*/0.05, /*l=*/0.10);
  ctx.episode_remaining = 1e9;
  EXPECT_EQ(policy->on_nonidle(ctx).action, Decision::Action::Continue);
}

TEST(OracleLinger, FactoryAndTraits) {
  const auto policy = make_policy(PolicyKind::OracleLinger);
  EXPECT_EQ(policy->kind(), PolicyKind::OracleLinger);
  EXPECT_EQ(policy->name(), "LL-oracle");
  EXPECT_TRUE(policy->allows_lingering());
}

TEST(Policies, DecisionsAreStateless) {
  // Same context twice gives the same decision (policies hold no job state).
  const auto policy = make_policy(PolicyKind::LingerLonger);
  const Decision a = policy->on_nonidle(ctx_of(12.0));
  const Decision b = policy->on_nonidle(ctx_of(12.0));
  EXPECT_EQ(a.action, b.action);
  EXPECT_DOUBLE_EQ(a.recheck_in, b.recheck_in);
}

}  // namespace
}  // namespace ll::core
