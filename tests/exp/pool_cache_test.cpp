#include "exp/pool_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "trace/coarse_generator.hpp"

namespace ll::exp {
namespace {

TEST(TracePoolCache, SameKeyReturnsSamePoolBuiltOnce) {
  TracePoolCache cache;
  const auto a = cache.standard(4, 8.0, 7);
  const auto b = cache.standard(4, 8.0, 7);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.builds(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(a->size(), 4u);
}

TEST(TracePoolCache, DistinctKeysBuildDistinctPools) {
  TracePoolCache cache;
  const auto a = cache.standard(4, 8.0, 7);
  const auto b = cache.standard(4, 8.0, 8);   // seed differs
  const auto c = cache.standard(4, 24.0, 7);  // hours differ
  const auto d = cache.standard(5, 8.0, 7);   // machines differ
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(a.get(), d.get());
  EXPECT_EQ(cache.builds(), 4u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(TracePoolCache, StandardPoolMatchesDirectGeneration) {
  // The cache must reproduce the historical bench/CLI convention exactly:
  // hours * 3600 duration, 09:00 start for sub-day pools.
  TracePoolCache cache;
  const auto cached = cache.standard(3, 8.0, 11);
  trace::CoarseGenConfig gen;
  gen.duration = 8.0 * 3600.0;
  gen.start_hour = 9.0;
  const auto direct =
      trace::generate_machine_pool(gen, 3, rng::Stream(11));
  ASSERT_EQ(cached->size(), direct.size());
  for (std::size_t m = 0; m < direct.size(); ++m) {
    ASSERT_EQ((*cached)[m].size(), direct[m].size()) << "machine " << m;
    for (std::size_t i = 0; i < direct[m].size(); ++i) {
      EXPECT_EQ((*cached)[m].samples()[i].cpu, direct[m].samples()[i].cpu);
    }
  }
}

TEST(TracePoolCache, ConcurrentGetsBuildExactlyOnce) {
  TracePoolCache cache;
  std::vector<std::thread> threads;
  std::vector<TracePoolCache::PoolPtr> got(8);
  for (std::size_t t = 0; t < got.size(); ++t) {
    threads.emplace_back(
        [&cache, &got, t] { got[t] = cache.standard(4, 8.0, 3); });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.builds(), 1u);
  for (const auto& p : got) EXPECT_EQ(p.get(), got[0].get());
}

TEST(TracePoolCache, ConcurrentSlowBuildsRunExactlyOnce) {
  // The serving race: two threads miss on the same key while the build is
  // slow. The second must wait on the first's future, not build again.
  TracePoolCache cache;
  std::atomic<int> build_calls{0};
  std::atomic<bool> release{false};
  const auto slow_build = [&] {
    ++build_calls;
    while (!release.load()) std::this_thread::yield();
    return TracePoolCache::Pool{};
  };
  std::vector<std::thread> threads;
  std::vector<TracePoolCache::PoolPtr> got(4);
  std::atomic<int> started{0};
  for (std::size_t t = 0; t < got.size(); ++t) {
    threads.emplace_back([&, t] {
      ++started;
      got[t] = cache.get_or_build(9, 8.0, 5, slow_build);
    });
  }
  while (started.load() < 4) std::this_thread::yield();
  // Give the laggards a moment to reach the cache while the build blocks.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release = true;
  for (auto& th : threads) th.join();
  EXPECT_EQ(build_calls.load(), 1);
  EXPECT_EQ(cache.builds(), 1u);
  EXPECT_EQ(cache.hits(), 3u);
  for (const auto& p : got) EXPECT_EQ(p.get(), got[0].get());
}

TEST(TracePoolCache, ConcurrentDistinctKeysBuildInParallel) {
  // Two different keys must not serialize: key A's build blocks until key
  // B's build has started, which deadlocks if the cache holds its lock
  // across generations.
  TracePoolCache cache;
  std::atomic<bool> b_started{false};
  std::thread a([&] {
    (void)cache.get_or_build(1, 8.0, 1, [&] {
      while (!b_started.load()) std::this_thread::yield();
      return TracePoolCache::Pool{};
    });
  });
  std::thread b([&] {
    (void)cache.get_or_build(1, 8.0, 2, [&] {
      b_started = true;
      return TracePoolCache::Pool{};
    });
  });
  a.join();
  b.join();
  EXPECT_EQ(cache.builds(), 2u);
}

TEST(TracePoolCache, FailedBuildPropagatesAndRetries) {
  TracePoolCache cache;
  EXPECT_THROW(
      (void)cache.get_or_build(
          2, 8.0, 3,
          []() -> TracePoolCache::Pool { throw std::runtime_error("boom"); }),
      std::runtime_error);
  // The failure is not cached: the next call builds again and succeeds.
  const auto pool =
      cache.get_or_build(2, 8.0, 3, [] { return TracePoolCache::Pool{}; });
  EXPECT_NE(pool, nullptr);
  EXPECT_EQ(cache.builds(), 2u);
}

TEST(TracePoolCache, EvictsLeastRecentlyUsedBeyondCapacity) {
  TracePoolCache cache;
  cache.set_capacity(2);
  (void)cache.standard(2, 8.0, 1);  // key 1
  (void)cache.standard(2, 8.0, 2);  // key 2
  (void)cache.standard(2, 8.0, 1);  // touch key 1 -> key 2 becomes LRU
  (void)cache.standard(2, 8.0, 3);  // evicts key 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.builds(), 3u);
  (void)cache.standard(2, 8.0, 1);  // still resident
  EXPECT_EQ(cache.builds(), 3u);
  (void)cache.standard(2, 8.0, 2);  // evicted -> rebuilt
  EXPECT_EQ(cache.builds(), 4u);
}

TEST(TracePoolCache, ShrinkingCapacityEvictsImmediately) {
  TracePoolCache cache;
  (void)cache.standard(2, 8.0, 1);
  (void)cache.standard(2, 8.0, 2);
  (void)cache.standard(2, 8.0, 3);
  EXPECT_EQ(cache.size(), 3u);
  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  // The survivor is the most recently used key.
  (void)cache.standard(2, 8.0, 3);
  EXPECT_EQ(cache.builds(), 3u);
}

TEST(TracePoolCache, ClearDropsEntries) {
  TracePoolCache cache;
  (void)cache.standard(2, 8.0, 1);
  cache.clear();
  (void)cache.standard(2, 8.0, 1);
  EXPECT_EQ(cache.builds(), 2u);
}

TEST(TracePoolCache, SharedIsAProcessSingleton) {
  EXPECT_EQ(&TracePoolCache::shared(), &TracePoolCache::shared());
}

}  // namespace
}  // namespace ll::exp
