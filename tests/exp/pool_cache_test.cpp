#include "exp/pool_cache.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "trace/coarse_generator.hpp"

namespace ll::exp {
namespace {

TEST(TracePoolCache, SameKeyReturnsSamePoolBuiltOnce) {
  TracePoolCache cache;
  const auto a = cache.standard(4, 8.0, 7);
  const auto b = cache.standard(4, 8.0, 7);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.builds(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(a->size(), 4u);
}

TEST(TracePoolCache, DistinctKeysBuildDistinctPools) {
  TracePoolCache cache;
  const auto a = cache.standard(4, 8.0, 7);
  const auto b = cache.standard(4, 8.0, 8);   // seed differs
  const auto c = cache.standard(4, 24.0, 7);  // hours differ
  const auto d = cache.standard(5, 8.0, 7);   // machines differ
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(a.get(), d.get());
  EXPECT_EQ(cache.builds(), 4u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(TracePoolCache, StandardPoolMatchesDirectGeneration) {
  // The cache must reproduce the historical bench/CLI convention exactly:
  // hours * 3600 duration, 09:00 start for sub-day pools.
  TracePoolCache cache;
  const auto cached = cache.standard(3, 8.0, 11);
  trace::CoarseGenConfig gen;
  gen.duration = 8.0 * 3600.0;
  gen.start_hour = 9.0;
  const auto direct =
      trace::generate_machine_pool(gen, 3, rng::Stream(11));
  ASSERT_EQ(cached->size(), direct.size());
  for (std::size_t m = 0; m < direct.size(); ++m) {
    ASSERT_EQ((*cached)[m].size(), direct[m].size()) << "machine " << m;
    for (std::size_t i = 0; i < direct[m].size(); ++i) {
      EXPECT_EQ((*cached)[m].samples()[i].cpu, direct[m].samples()[i].cpu);
    }
  }
}

TEST(TracePoolCache, ConcurrentGetsBuildExactlyOnce) {
  TracePoolCache cache;
  std::vector<std::thread> threads;
  std::vector<TracePoolCache::PoolPtr> got(8);
  for (std::size_t t = 0; t < got.size(); ++t) {
    threads.emplace_back(
        [&cache, &got, t] { got[t] = cache.standard(4, 8.0, 3); });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.builds(), 1u);
  for (const auto& p : got) EXPECT_EQ(p.get(), got[0].get());
}

TEST(TracePoolCache, ClearDropsEntries) {
  TracePoolCache cache;
  (void)cache.standard(2, 8.0, 1);
  cache.clear();
  (void)cache.standard(2, 8.0, 1);
  EXPECT_EQ(cache.builds(), 2u);
}

TEST(TracePoolCache, SharedIsAProcessSingleton) {
  EXPECT_EQ(&TracePoolCache::shared(), &TracePoolCache::shared());
}

}  // namespace
}  // namespace ll::exp
