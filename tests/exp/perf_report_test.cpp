#include "exp/perf_report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace ll::exp {
namespace {

PerfReport sample_report() {
  PerfReport report;
  report.seed = 42;
  report.workers = 4;
  report.scale = 1.0;
  PerfEntry a;
  a.name = "micro_steal";
  a.wall_s = 0.010;
  a.items = 200000;
  PerfEntry b;
  b.name = "fig07";
  b.wall_s = 0.200;
  b.items = 8;
  report.entries = {a, b};
  return report;
}

std::string baseline_json(const std::string& version, std::uint64_t steal_items,
                          double steal_wall = 0.010) {
  std::ostringstream out;
  out << "{\"tool\": \"llsim bench --report\", \"version\": \"" << version
      << "\", \"seed\": 42, \"config\": {\"workers\": 4, \"scale\": 1},\n"
      << "\"entries\": [\n"
      << " {\"name\": \"micro_steal\", \"wall_s\": " << steal_wall
      << ", \"items\": " << steal_items << "},\n"
      << " {\"name\": \"fig07\", \"wall_s\": 0.2, \"items\": 8}\n]}";
  return out.str();
}

TEST(PerfReportCheck, VersionAndWallJitterAreIgnored) {
  // A different (clean) version string and small wall drift both pass:
  // only the ratio gate and structural fields are diffed.
  const PerfReport current = sample_report();
  std::ostringstream out;
  EXPECT_EQ(check_perf_report(current,
                              baseline_json("0000000", 200000, 0.009), 10.0,
                              out),
            0)
      << out.str();
}

TEST(PerfReportCheck, DirtyBaselineFailsWhenCleanRequired) {
  const PerfReport current = sample_report();
  std::ostringstream out;
  EXPECT_EQ(check_perf_report(current, baseline_json("abc1234-dirty", 200000),
                              10.0, out, /*require_clean_baseline=*/true),
            1);
  EXPECT_NE(out.str().find("dirty tree"), std::string::npos);
}

TEST(PerfReportCheck, DirtyBaselineOnlyWarnsByDefault) {
  const PerfReport current = sample_report();
  std::ostringstream out;
  EXPECT_EQ(check_perf_report(current, baseline_json("abc1234-dirty", 200000),
                              10.0, out),
            0);
  EXPECT_NE(out.str().find("warning"), std::string::npos);
}

TEST(PerfReportCheck, StructuralItemsDriftFailsOnSameShape) {
  const PerfReport current = sample_report();
  std::ostringstream out;
  EXPECT_EQ(
      check_perf_report(current, baseline_json("0000000", 100000), 10.0, out),
      1);
  EXPECT_NE(out.str().find("items"), std::string::npos);
}

TEST(PerfReportCheck, ItemsNotComparedAcrossDifferentShapes) {
  // Same entries, but the baseline ran another worker count: items are not
  // comparable, only the wall ratio gates.
  PerfReport current = sample_report();
  current.workers = 2;
  std::ostringstream out;
  EXPECT_EQ(
      check_perf_report(current, baseline_json("0000000", 100000), 10.0, out),
      0)
      << out.str();
}

TEST(PerfReportCheck, WallRegressionBeyondToleranceFails) {
  PerfReport current = sample_report();
  current.entries[0].wall_s = 1.0;  // 100x the 0.010 baseline
  std::ostringstream out;
  EXPECT_EQ(
      check_perf_report(current, baseline_json("0000000", 200000), 10.0, out),
      1);
  EXPECT_NE(out.str().find("slower than tolerance"), std::string::npos);
}

TEST(PerfReportCheck, MissingAndExtraEntriesFail) {
  PerfReport current = sample_report();
  current.entries.pop_back();  // fig07 present in baseline only
  std::ostringstream out;
  EXPECT_EQ(
      check_perf_report(current, baseline_json("0000000", 200000), 10.0, out),
      1);
  EXPECT_NE(out.str().find("not produced"), std::string::npos);
}

TEST(PerfReportCheck, UnparseableBaselineReturnsTwo) {
  std::ostringstream out;
  EXPECT_EQ(check_perf_report(sample_report(), "{not json", 10.0, out), 2);
}

}  // namespace
}  // namespace ll::exp
