#include "util/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

namespace ll::util {
namespace {

TEST(TaskRunner, RunsEveryTaskExactlyOnce) {
  TaskRunner runner(4);
  std::vector<std::atomic<int>> hits(100);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  runner.run(std::move(tasks));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskRunner, EmptyBatchIsANoop) {
  TaskRunner runner(2);
  EXPECT_NO_THROW(runner.run({}));
}

TEST(TaskRunner, SingleThreadSpawnsNoWorkersAndRunsInline) {
  const std::uint64_t before = TaskRunner::total_threads_created();
  TaskRunner runner(1);
  EXPECT_EQ(runner.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    tasks.push_back([&seen, i] { seen[i] = std::this_thread::get_id(); });
  }
  runner.run(std::move(tasks));
  for (const auto& id : seen) EXPECT_EQ(id, caller);
  EXPECT_EQ(TaskRunner::total_threads_created(), before);
}

TEST(TaskRunner, ZeroSelectsHardwareConcurrency) {
  TaskRunner runner(0);
  EXPECT_GE(runner.thread_count(), 1u);
}

TEST(TaskRunner, BoundsWorkerThreadsToPoolSize) {
  TaskRunner runner(3);
  const std::uint64_t before = TaskRunner::total_threads_created();
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int round = 0; round < 4; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 64; ++i) {
      tasks.push_back([&mu, &ids] {
        const std::lock_guard<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
      });
    }
    runner.run(std::move(tasks));
  }
  // Caller + at most 2 pool threads, created once, reused across batches.
  EXPECT_LE(ids.size(), 3u);
  EXPECT_LE(TaskRunner::total_threads_created() - before, 2u);
}

TEST(TaskRunner, RethrowsLowestIndexExceptionAfterDraining) {
  TaskRunner runner(4);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([&ran, i] {
      ran.fetch_add(1);
      if (i == 20) throw std::runtime_error("late failure");
      if (i == 7) throw std::invalid_argument("early failure");
    });
  }
  try {
    runner.run(std::move(tasks));
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "early failure");  // index 7 beats index 20
  }
  EXPECT_EQ(ran.load(), 32);  // a failure never cancels the rest
}

TEST(TaskRunner, UsableAgainAfterAnException) {
  TaskRunner runner(2);
  std::vector<std::function<void()>> bad;
  bad.push_back([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(runner.run(std::move(bad)), std::runtime_error);

  std::atomic<int> ran{0};
  std::vector<std::function<void()>> good;
  for (int i = 0; i < 16; ++i) good.push_back([&ran] { ran.fetch_add(1); });
  runner.run(std::move(good));
  EXPECT_EQ(ran.load(), 16);
}

TEST(TaskRunner, NestedRunDoesNotDeadlock) {
  TaskRunner runner(2);
  std::atomic<int> inner_ran{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&runner, &inner_ran] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 8; ++j) {
        inner.push_back([&inner_ran] { inner_ran.fetch_add(1); });
      }
      runner.run(std::move(inner));
    });
  }
  runner.run(std::move(outer));
  EXPECT_EQ(inner_ran.load(), 32);
}

TEST(TaskRunner, SharedRunnerIsAProcessSingleton) {
  TaskRunner& a = TaskRunner::shared();
  TaskRunner& b = TaskRunner::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
}

}  // namespace
}  // namespace ll::util
