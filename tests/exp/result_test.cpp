#include "exp/result.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace ll::exp {
namespace {

TEST(RunResult, PreservesInsertionOrderAndOverwrites) {
  RunResult r;
  r.set("b", 2.0);
  r.set("a", 1.0);
  r.set("b", 3.0);  // overwrite keeps the original position
  ASSERT_EQ(r.metrics().size(), 2u);
  EXPECT_EQ(r.metrics()[0].first, "b");
  EXPECT_EQ(r.metrics()[0].second, 3.0);
  EXPECT_EQ(r.metrics()[1].first, "a");
  EXPECT_EQ(r.get("a"), 1.0);
  EXPECT_FALSE(r.get("missing").has_value());
}

TEST(CellResult, LabelAndSummaryLookup) {
  CellResult cell;
  cell.labels = {{"policy", "LL"}, {"workload", "w1"}};
  cell.summaries.emplace_back("avg",
                              stats::ConfidenceInterval{10.0, 2.0, 5});
  EXPECT_EQ(cell.label("workload"), "w1");
  EXPECT_EQ(cell.label("nope"), "");
  ASSERT_NE(cell.summary("avg"), nullptr);
  EXPECT_EQ(cell.summary("avg")->mean, 10.0);
  EXPECT_EQ(cell.summary("nope"), nullptr);
}

SweepResult tiny_sweep(std::size_t reps) {
  SweepResult sweep;
  sweep.name = "tiny";
  sweep.seed = 9;
  sweep.replications = reps;
  sweep.axes = {"policy"};
  sweep.metric_names = {"m"};
  for (const char* policy : {"LL", "IE"}) {
    CellResult cell;
    cell.labels = {{"policy", policy}};
    const double base = policy[0] == 'L' ? 1.0 : 2.0;
    std::vector<double> values;
    for (std::size_t r = 0; r < reps; ++r) {
      RunResult run;
      run.set("m", base + static_cast<double>(r));
      values.push_back(base + static_cast<double>(r));
      cell.replications.push_back(run);
    }
    cell.summaries.emplace_back("m", stats::mean_confidence_95(values));
    sweep.cells.push_back(std::move(cell));
  }
  return sweep;
}

TEST(SweepResult, FindMatchesAllGivenLabels) {
  const SweepResult sweep = tiny_sweep(1);
  ASSERT_NE(sweep.find({{"policy", "IE"}}), nullptr);
  EXPECT_EQ(sweep.find({{"policy", "IE"}})->summary("m")->mean, 2.0);
  EXPECT_EQ(sweep.find({{"policy", "PM"}}), nullptr);
}

TEST(Sinks, TableHidesCiColumnForSingleReplication) {
  const std::string single = render_table(tiny_sweep(1));
  EXPECT_NE(single.find("| policy |"), std::string::npos);
  EXPECT_EQ(single.find("±95%"), std::string::npos);

  const std::string multi = render_table(tiny_sweep(3));
  EXPECT_NE(multi.find("±95%"), std::string::npos);
}

TEST(Sinks, CsvHasAxisMetricAndCiColumns) {
  std::ostringstream out;
  write_csv(tiny_sweep(2), out);
  const std::string csv = out.str();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "policy,m,m_ci95");
  EXPECT_NE(csv.find("\nLL,"), std::string::npos);
  EXPECT_NE(csv.find("\nIE,"), std::string::npos);
}

TEST(Sinks, JsonRoundTripsStructure) {
  const std::string json = to_json(tiny_sweep(2));
  EXPECT_NE(json.find("\"name\": \"tiny\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"replications\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"LL\""), std::string::npos);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
}

TEST(Sinks, JsonSerializesNonFiniteAsNull) {
  SweepResult sweep = tiny_sweep(1);
  RunResult bad;
  bad.set("m", std::numeric_limits<double>::quiet_NaN());
  sweep.cells[0].replications[0] = bad;
  const std::string json = to_json(sweep);
  EXPECT_NE(json.find("null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(Sinks, SerializationIsDeterministic) {
  const SweepResult sweep = tiny_sweep(3);
  EXPECT_EQ(to_json(sweep), to_json(sweep));
  EXPECT_EQ(to_csv(sweep), to_csv(sweep));
  EXPECT_EQ(render_table(sweep), render_table(sweep));
}

}  // namespace
}  // namespace ll::exp
