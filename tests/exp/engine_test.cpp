#include "exp/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "exp/result.hpp"
#include "exp/spec.hpp"
#include "rng/rng.hpp"

namespace ll::exp {
namespace {

/// A deterministic pseudo-simulation: metrics are pure functions of the
/// seed, so any scheduling difference would show up in the collected sweep.
RunResult fake_run(std::uint64_t seed) {
  rng::Stream stream(seed);
  RunResult r;
  r.set("x", stream.uniform01());
  r.set("y", stream.uniform01() * 10.0);
  return r;
}

ExperimentSpec grid_spec(std::size_t cells, std::size_t reps,
                         std::uint64_t seed = 42) {
  ExperimentSpec spec;
  spec.name = "grid";
  spec.seed = seed;
  spec.replications = reps;
  spec.axes = {"cell"};
  for (std::size_t c = 0; c < cells; ++c) {
    spec.add_cell({{"cell", std::to_string(c)}}, fake_run);
  }
  return spec;
}

TEST(Engine, SeedsAreAPureFunctionOfGridPosition) {
  const std::uint64_t expected =
      rng::Stream(42).fork("cell", 3).fork("replication", 2).seed();
  EXPECT_EQ(replication_seed(42, 3, 2), expected);
  // Distinct positions, distinct seeds.
  EXPECT_NE(replication_seed(42, 0, 0), replication_seed(42, 0, 1));
  EXPECT_NE(replication_seed(42, 0, 0), replication_seed(42, 1, 0));
  EXPECT_NE(replication_seed(42, 0, 0), replication_seed(43, 0, 0));
}

TEST(Engine, CollectsEveryCellInSpecOrderWithDerivedSeeds) {
  const ExperimentSpec spec = grid_spec(5, 3);
  const SweepResult sweep = run_sweep(spec);
  ASSERT_EQ(sweep.cells.size(), 5u);
  EXPECT_EQ(sweep.replications, 3u);
  EXPECT_EQ(sweep.axes, std::vector<std::string>{"cell"});
  for (std::size_t c = 0; c < sweep.cells.size(); ++c) {
    EXPECT_EQ(sweep.cells[c].label("cell"), std::to_string(c));
    ASSERT_EQ(sweep.cells[c].replications.size(), 3u);
    for (std::size_t r = 0; r < 3; ++r) {
      const RunResult expected = fake_run(replication_seed(42, c, r));
      EXPECT_EQ(sweep.cells[c].replications[r].get("x"), expected.get("x"));
    }
  }
}

TEST(Engine, SummariesMatchDirectConfidenceComputation) {
  const SweepResult sweep = run_sweep(grid_spec(2, 4));
  for (const CellResult& cell : sweep.cells) {
    std::vector<double> xs;
    for (const RunResult& run : cell.replications) xs.push_back(*run.get("x"));
    const auto direct = stats::mean_confidence_95(xs);
    const auto* ci = cell.summary("x");
    ASSERT_NE(ci, nullptr);
    EXPECT_DOUBLE_EQ(ci->mean, direct.mean);
    EXPECT_DOUBLE_EQ(ci->half_width, direct.half_width);
    EXPECT_EQ(ci->n, 4u);
  }
}

TEST(Engine, OutputIsByteIdenticalForAnyThreadCount) {
  const ExperimentSpec spec = grid_spec(7, 5, 11);
  EngineOptions one;
  one.jobs = 1;
  const SweepResult base = run_sweep(spec, one);
  const std::string json = to_json(base);
  const std::string csv = to_csv(base);
  for (std::size_t jobs : {4u, 16u}) {
    EngineOptions options;
    options.jobs = jobs;
    const SweepResult sweep = run_sweep(spec, options);
    EXPECT_EQ(to_json(sweep), json) << "jobs=" << jobs;
    EXPECT_EQ(to_csv(sweep), csv) << "jobs=" << jobs;
  }
}

TEST(Engine, MutatingByValueCapturesIsSafeAcrossReplications) {
  // The engine copies the cell callable per replication; a shared capture
  // mutated by every replication (the `[cfg](seed) mutable` idiom) must not
  // leak state between concurrent replications.
  struct Config {
    std::uint64_t seed = 0;
  };
  ExperimentSpec spec;
  spec.name = "mutable-capture";
  spec.seed = 5;
  spec.replications = 16;
  spec.axes = {"cell"};
  Config cfg;
  spec.add_cell({{"cell", "0"}}, [cfg](std::uint64_t seed) mutable {
    cfg.seed = seed;
    // A second read after some work; if another replication overwrote the
    // shared capture, this diverges from `seed`.
    double burn = 0.0;
    for (int i = 0; i < 1000; ++i) burn += std::sqrt(static_cast<double>(i));
    RunResult r;
    r.set("seed_stable", cfg.seed == seed ? 1.0 : 0.0);
    r.set("burn", burn);
    return r;
  });
  EngineOptions options;
  options.jobs = 8;
  const SweepResult sweep = run_sweep(spec, options);
  EXPECT_DOUBLE_EQ(sweep.cells[0].summary("seed_stable")->mean, 1.0);
}

TEST(Engine, ZeroReplicationsThrows) {
  ExperimentSpec spec = grid_spec(1, 1);
  spec.replications = 0;
  EXPECT_THROW((void)run_sweep(spec), std::invalid_argument);
}

TEST(Engine, CellExceptionPropagatesLowestIndexFirst) {
  ExperimentSpec spec;
  spec.seed = 1;
  spec.replications = 2;
  spec.axes = {"cell"};
  spec.add_cell({{"cell", "ok"}}, fake_run);
  spec.add_cell({{"cell", "bad"}}, [](std::uint64_t) -> RunResult {
    throw std::runtime_error("cell failure");
  });
  EngineOptions options;
  options.jobs = 4;
  EXPECT_THROW((void)run_sweep(spec, options), std::runtime_error);
}

TEST(Engine, MetricUnionPreservesFirstSeenOrder) {
  ExperimentSpec spec;
  spec.seed = 3;
  spec.replications = 1;
  spec.axes = {"cell"};
  spec.add_cell({{"cell", "a"}}, [](std::uint64_t) {
    RunResult r;
    r.set("alpha", 1.0);
    r.set("beta", 2.0);
    return r;
  });
  spec.add_cell({{"cell", "b"}}, [](std::uint64_t) {
    RunResult r;
    r.set("beta", 3.0);
    r.set("gamma", 4.0);
    return r;
  });
  const SweepResult sweep = run_sweep(spec);
  EXPECT_EQ(sweep.metric_names,
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
  // A metric absent from a cell renders as "-" rather than throwing.
  EXPECT_EQ(sweep.cells[1].summary("alpha"), nullptr);
  EXPECT_NE(render_table(sweep).find("-"), std::string::npos);
}

TEST(Engine, ExternalRunnerIsUsed) {
  util::TaskRunner runner(2);
  EngineOptions options;
  options.runner = &runner;
  const SweepResult sweep = run_sweep(grid_spec(3, 2), options);
  EXPECT_EQ(sweep.cells.size(), 3u);
  // Identical to an internally constructed runner.
  EXPECT_EQ(to_json(sweep), to_json(run_sweep(grid_spec(3, 2))));
}

}  // namespace
}  // namespace ll::exp
