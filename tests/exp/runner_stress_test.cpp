/// \file runner_stress_test.cpp
/// Adversarial-schedule suite for the lock-free work-stealing TaskRunner.
/// Extends the functional contract tests in runner_test.cpp with the cases
/// that only show up under contention: randomized task durations across
/// thread counts (result buffers must stay bit-identical), reentrancy under
/// load, exception storms, concurrent external callers, and the
/// threads > tasks regime. The TSan CI preset repeats this suite to flush
/// schedule-dependent races.

#include "util/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ll::util {
namespace {

/// SplitMix64 — deterministic per-index work shapes without <random>.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Burns a pseudo-random, index-derived amount of CPU and returns a value
/// that depends on every iteration — the scheduler cannot change it, only
/// reorder when it is computed.
std::uint64_t burn(std::uint64_t seed, std::uint64_t iters) {
  std::uint64_t acc = seed;
  for (std::uint64_t i = 0; i < iters; ++i) acc = mix(acc + i);
  return acc;
}

std::vector<std::uint64_t> run_batch(std::size_t threads, std::uint64_t seed,
                                     std::size_t tasks) {
  TaskRunner runner(threads);
  std::vector<std::uint64_t> results(tasks, 0);
  std::vector<std::function<void()>> batch;
  batch.reserve(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    // Duration varies per task by ~256x: adversarial for any scheduler
    // that assumes uniform tasks, ideal for provoking steals.
    const std::uint64_t iters = 1 + (mix(seed + i) & 0xff) * 16;
    batch.push_back([&results, i, seed, iters] {
      results[i] = burn(seed ^ i, iters);
    });
  }
  runner.run(std::move(batch));
  return results;
}

TEST(TaskRunnerStress, RandomDurationBatchesAreBitIdenticalAcrossThreads) {
  const std::size_t hw = std::thread::hardware_concurrency();
  const std::vector<std::uint64_t> base = run_batch(1, 42, 512);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}, hw}) {
    if (threads == 0) continue;
    const std::vector<std::uint64_t> got = run_batch(threads, 42, 512);
    ASSERT_EQ(got.size(), base.size());
    EXPECT_EQ(0, std::memcmp(got.data(), base.data(),
                             base.size() * sizeof(base[0])))
        << "result buffer diverged at threads=" << threads;
  }
}

TEST(TaskRunnerStress, RepeatedBatchesStayIdenticalOnOneRunner) {
  // Same runner, many batches: no state may leak between batches.
  TaskRunner runner(4);
  std::vector<std::uint64_t> first;
  for (int round = 0; round < 8; ++round) {
    std::vector<std::uint64_t> results(64, 0);
    std::vector<std::function<void()>> batch;
    for (std::size_t i = 0; i < results.size(); ++i) {
      batch.push_back([&results, i] { results[i] = burn(i, 100 + i * 7); });
    }
    runner.run(std::move(batch));
    if (round == 0) {
      first = results;
    } else {
      EXPECT_EQ(results, first) << "round " << round;
    }
  }
}

TEST(TaskRunnerStress, ReentrancyUnderContention) {
  // Every outer task spawns an inner batch on the same runner while the
  // pool is saturated; inner batches may be stolen by other workers.
  TaskRunner runner(4);
  constexpr std::size_t kOuter = 32;
  constexpr std::size_t kInner = 16;
  std::vector<std::vector<std::uint64_t>> results(
      kOuter, std::vector<std::uint64_t>(kInner, 0));
  std::vector<std::function<void()>> outer;
  for (std::size_t o = 0; o < kOuter; ++o) {
    outer.push_back([&runner, &results, o] {
      std::vector<std::function<void()>> inner;
      for (std::size_t i = 0; i < kInner; ++i) {
        inner.push_back([&results, o, i] {
          results[o][i] = burn(o * 1000 + i, 50 + ((o + i) & 0x1f));
        });
      }
      runner.run(std::move(inner));
    });
  }
  runner.run(std::move(outer));
  for (std::size_t o = 0; o < kOuter; ++o) {
    for (std::size_t i = 0; i < kInner; ++i) {
      EXPECT_EQ(results[o][i], burn(o * 1000 + i, 50 + ((o + i) & 0x1f)));
    }
  }
}

TEST(TaskRunnerStress, DeepNestingDoesNotDeadlock) {
  TaskRunner runner(2);
  std::atomic<int> leaves{0};
  // 4 levels deep, branching 3: 81 leaf tasks, all through nested run().
  std::function<void(int)> spawn = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::vector<std::function<void()>> batch;
    for (int i = 0; i < 3; ++i) batch.push_back([&, depth] { spawn(depth - 1); });
    runner.run(std::move(batch));
  };
  spawn(4);
  EXPECT_EQ(leaves.load(), 81);
}

TEST(TaskRunnerStress, ExceptionStormRethrowsLowestIndex) {
  // Many throwing tasks racing: the rethrow must still be the smallest
  // index, and every task must have run.
  TaskRunner runner(4);
  constexpr int kTasks = 256;
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> batch;
  for (int i = 0; i < kTasks; ++i) {
    batch.push_back([&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i % 3 == 1) throw std::runtime_error(std::to_string(i));
    });
  }
  try {
    runner.run(std::move(batch));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "1");  // smallest throwing index is 1
  }
  EXPECT_EQ(ran.load(), kTasks);

  // The runner survives the storm: the next batch is clean.
  std::atomic<int> after{0};
  std::vector<std::function<void()>> good;
  for (int i = 0; i < 32; ++i) {
    good.push_back([&after] { after.fetch_add(1, std::memory_order_relaxed); });
  }
  runner.run(std::move(good));
  EXPECT_EQ(after.load(), 32);
}

TEST(TaskRunnerStress, EmptyBatchIsANoopEvenUnderRepetition) {
  // Pinned edge case: run({}) publishes nothing, wakes nobody, and leaves
  // the runner fully usable — even interleaved with real batches.
  TaskRunner runner(4);
  const TaskRunner::Stats before = runner.stats();
  for (int i = 0; i < 100; ++i) runner.run({});
  const TaskRunner::Stats after = runner.stats();
  EXPECT_EQ(after.executed, before.executed);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  runner.run(std::move(batch));
  EXPECT_EQ(ran.load(), 8);
}

TEST(TaskRunnerStress, MoreThreadsThanTasksCompletesAndReportsSuspensions) {
  // threads > tasks: the surplus workers must go to sleep, not spin. The
  // wall-clock/CPU-time bound is asserted in bench/micro_steal.cpp; here we
  // pin the functional half — completion, correct results, and that the
  // suspension path is actually exercised over the runner's lifetime.
  // Reaching atomic::wait requires the idle workers to be scheduled long
  // enough to walk the spin->yield escalation, which on a loaded
  // single-core sanitizer run can take far longer than a fixed pause — so
  // poll against a generous deadline and stop at the first suspension.
  TaskRunner runner(8);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool suspended = false;
  while (!suspended && std::chrono::steady_clock::now() < deadline) {
    std::vector<std::uint64_t> results(2, 0);
    std::vector<std::function<void()>> batch;
    for (std::size_t i = 0; i < 2; ++i) {
      batch.push_back([&results, i] { results[i] = burn(i, 1000); });
    }
    runner.run(std::move(batch));
    ASSERT_EQ(results[0], burn(0, 1000));
    ASSERT_EQ(results[1], burn(1, 1000));
    // Give idle workers a beat to run their escalation to atomic::wait.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    suspended = runner.stats().suspensions > 0;
  }
  EXPECT_TRUE(suspended) << "idle workers never reached the suspend state";
}

TEST(TaskRunnerStress, ConcurrentExternalCallersShareOnePool) {
  // Multiple external threads calling run() on the same runner at once —
  // the batch-publication table and completion accounting must hold up.
  TaskRunner runner(4);
  constexpr std::size_t kCallers = 6;
  constexpr std::size_t kTasks = 64;
  std::vector<std::vector<std::uint64_t>> results(
      kCallers, std::vector<std::uint64_t>(kTasks, 0));
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&runner, &results, c] {
      std::vector<std::function<void()>> batch;
      for (std::size_t i = 0; i < kTasks; ++i) {
        batch.push_back([&results, c, i] {
          results[c][i] = burn(c * 777 + i, 20 + (i & 0x3f));
        });
      }
      runner.run(std::move(batch));
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(results[c][i], burn(c * 777 + i, 20 + (i & 0x3f)));
    }
  }
}

TEST(TaskRunnerStress, ManySmallBatchesChurnPublicationAndWakeup) {
  // Rapid-fire tiny batches: exercises publish/unpublish, the wake-one
  // cascade, and the sleep path between batches.
  TaskRunner runner(4);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 500; ++round) {
    std::vector<std::function<void()>> batch;
    const int n = 2 + (round % 7);
    for (int i = 0; i < n; ++i) {
      batch.push_back(
          [&total] { total.fetch_add(1, std::memory_order_relaxed); });
    }
    runner.run(std::move(batch));
  }
  std::uint64_t expected = 0;
  for (int round = 0; round < 500; ++round) expected += 2 + (round % 7);
  EXPECT_EQ(total.load(), expected);
}

TEST(TaskRunnerStress, StealsActuallyHappenWhenAWorkerIsParked) {
  // A scheduler that never steals would still pass the determinism tests —
  // pin that the lock-free steal path is live. Construction: 16 tasks on a
  // 2-worker runner; one task blocks until every other task has finished,
  // parking whichever worker picked it. The remaining tasks in the parked
  // worker's deque can then only complete by being stolen from the other
  // side, so `stolen` must advance (and the blocking task's exit condition
  // proves they did complete).
  TaskRunner runner(2);
  const TaskRunner::Stats before = runner.stats();
  constexpr int kTasks = 16;
  std::atomic<int> done{0};
  std::vector<std::function<void()>> batch;
  for (int i = 0; i < kTasks; ++i) {
    if (i == 14) {
      batch.push_back([&done] {
        while (done.load(std::memory_order_acquire) < kTasks - 1) {
          std::this_thread::yield();
        }
        done.fetch_add(1, std::memory_order_release);
      });
    } else {
      batch.push_back(
          [&done] { done.fetch_add(1, std::memory_order_release); });
    }
  }
  runner.run(std::move(batch));
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_GT(runner.stats().stolen, before.stolen);
}

}  // namespace
}  // namespace ll::util
