/// Edge-path coverage for the cluster simulator: migration concurrency
/// caps, repeated horizons, occupancy corner cases, and configuration
/// combinations the mainline tests do not reach.

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "cluster/cluster_sim.hpp"
#include "common/scenario_builders.hpp"
#include "verify/digest.hpp"
#include "verify/invariants.hpp"
#include "workload/burst_table.hpp"

namespace ll::cluster {
namespace {

using namespace ll::test_support;

TEST(ClusterEdge, MigrationConcurrencyCapSerializesMigrations) {
  // Three nodes turn busy simultaneously; three idle targets exist. With
  // the cap at 1, evictions must migrate one at a time.
  std::vector<trace::CoarseTrace> pool;
  for (int i = 0; i < 3; ++i) {
    pool.push_back(pattern_trace(".." + std::string(400, 'B')));
  }
  for (int i = 0; i < 3; ++i) {
    pool.push_back(pattern_trace(std::string(402, '.')));
  }
  auto run_with = [&](std::size_t cap) {
    auto cfg = base_config(core::PolicyKind::ImmediateEviction, 6);
    cfg.max_concurrent_migrations = cap;
    ClusterSim sim(cfg, pool, table(), rng::Stream(1));
    for (int i = 0; i < 3; ++i) sim.submit(120.0);
    sim.run_until_all_complete();
    double total_migrating = 0.0;
    for (const JobRecord& job : sim.jobs()) {
      total_migrating += job.time_in(JobState::Migrating);
    }
    // Paused time accumulates while jobs wait for a migration slot.
    double total_paused = 0.0;
    for (const JobRecord& job : sim.jobs()) {
      total_paused += job.time_in(JobState::Paused);
    }
    EXPECT_EQ(sim.migrations_started(), 3u);
    return total_paused;
  };
  const double paused_serial = run_with(1);
  const double paused_parallel = run_with(0);  // unlimited
  // Serialized migrations force later jobs to wait in Paused.
  EXPECT_GT(paused_serial, paused_parallel + 3.0);
}

TEST(ClusterEdge, RepeatedRunForSegmentsAccumulate) {
  std::vector<trace::CoarseTrace> pool{pattern_trace(std::string(400, '.'))};
  auto cfg = base_config(core::PolicyKind::LingerLonger, 1);
  ClusterSim sim(cfg, pool, table(), rng::Stream(2));
  sim.set_completion_callback(
      [&sim](const JobRecord&) { sim.submit(10.0); });
  sim.submit(10.0);
  sim.run_for(50.0);
  const double first = sim.delivered_cpu();
  sim.run_for(50.0);
  EXPECT_NEAR(sim.delivered_cpu(), 2.0 * first, first * 0.1);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(ClusterEdge, SubmitAfterRunForContinues) {
  std::vector<trace::CoarseTrace> pool{pattern_trace(std::string(400, '.'))};
  auto cfg = base_config(core::PolicyKind::LingerLonger, 1);
  ClusterSim sim(cfg, pool, table(), rng::Stream(3));
  sim.run_for(100.0);
  EXPECT_DOUBLE_EQ(sim.delivered_cpu(), 0.0);
  sim.submit(20.0);
  sim.run_until_all_complete();
  EXPECT_NEAR(sim.delivered_cpu(), 20.0, 1e-6);
  EXPECT_GT(*sim.jobs().front().completion, 100.0);
}

TEST(ClusterEdge, MoreNodesThanTracesWrapsPool) {
  std::vector<trace::CoarseTrace> pool{pattern_trace(std::string(200, '.')),
                                       pattern_trace(std::string(200, 'B'))};
  auto cfg = base_config(core::PolicyKind::LingerForever, 5);
  ClusterSim sim(cfg, pool, table(), rng::Stream(4));
  // Nodes 0,2,4 replay the idle trace; 1,3 the busy one.
  for (int i = 0; i < 5; ++i) sim.submit(30.0);
  sim.run_until_all_complete();
  // Three jobs finish at ~30 s (idle nodes), two late (lingering at 50%).
  std::size_t fast = 0;
  for (const JobRecord& job : sim.jobs()) {
    if (*job.completion < 40.0) ++fast;
  }
  EXPECT_EQ(fast, 3u);
}

TEST(ClusterEdge, OracleWithMultiOccupancy) {
  // The oracle and processor sharing compose without violating conservation.
  std::vector<trace::CoarseTrace> pool{
      pattern_trace(".." + std::string(200, 'B') + std::string(200, '.'))};
  auto cfg = base_config(core::PolicyKind::OracleLinger, 2);
  cfg.max_foreign_per_node = 2;
  ClusterSim sim(cfg, pool, table(), rng::Stream(5));
  for (int i = 0; i < 4; ++i) sim.submit(60.0);
  sim.run_until_all_complete(1e6);
  double demand = 0.0;
  for (const JobRecord& job : sim.jobs()) demand += job.cpu_demand;
  EXPECT_NEAR(sim.delivered_cpu(), demand, 1e-6);
}

TEST(ClusterEdge, TinyJobsCompleteWithinFirstWindow) {
  std::vector<trace::CoarseTrace> pool{pattern_trace(std::string(100, '.'))};
  auto cfg = base_config(core::PolicyKind::LingerLonger, 1);
  ClusterSim sim(cfg, pool, table(), rng::Stream(6));
  sim.submit(0.5);
  sim.run_until_all_complete();
  EXPECT_NEAR(*sim.jobs().front().completion, 0.5, 0.1);
}

TEST(ClusterEdge, ManyTinyJobsPipelineCleanly) {
  std::vector<trace::CoarseTrace> pool{pattern_trace(std::string(400, '.'))};
  auto cfg = base_config(core::PolicyKind::LingerLonger, 2);
  ClusterSim sim(cfg, pool, table(), rng::Stream(7));
  for (int i = 0; i < 40; ++i) sim.submit(1.0);
  sim.run_until_all_complete();
  // 40 cpu-seconds over 2 nodes ~ 20 s of wall time.
  EXPECT_NEAR(sim.now(), 20.0, 2.5);
  EXPECT_NEAR(sim.delivered_cpu(), 40.0, 1e-6);
}

TEST(ClusterEdge, ZeroRestorePenaltyByDefault) {
  ClusterConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.owner_restore_penalty, 0.0);
  EXPECT_EQ(cfg.max_foreign_per_node, 1u);
  EXPECT_EQ(cfg.max_concurrent_migrations, 0u);
}

TEST(ClusterEdge, MigrationCapUnlimitedAndSizeMaxAreIdentical) {
  // 0 means "unlimited"; a cap of SIZE_MAX can never bind either. The two
  // runs must be event-for-event identical, not merely similar.
  std::vector<trace::CoarseTrace> pool;
  for (int i = 0; i < 3; ++i) {
    pool.push_back(pattern_trace(".." + std::string(400, 'B')));
  }
  for (int i = 0; i < 3; ++i) {
    pool.push_back(pattern_trace(std::string(402, '.')));
  }
  auto run_with = [&](std::size_t cap, verify::DigestObserver& digest) {
    auto cfg = base_config(core::PolicyKind::ImmediateEviction, 6);
    cfg.max_concurrent_migrations = cap;
    ClusterSim sim(cfg, pool, table(), rng::Stream(1));
    sim.set_sim_observer(&digest);
    for (int i = 0; i < 3; ++i) sim.submit(120.0);
    sim.run_until_all_complete();
    sim.set_sim_observer(nullptr);
    return sim.migrations_started();
  };
  verify::DigestObserver unlimited;
  verify::DigestObserver size_max;
  EXPECT_EQ(run_with(0, unlimited),
            run_with(std::numeric_limits<std::size_t>::max(), size_max));
  EXPECT_EQ(unlimited.digest().value(), size_max.digest().value());
  EXPECT_EQ(unlimited.events(), size_max.events());
  EXPECT_GT(unlimited.events(), 0u);
}

TEST(ClusterEdge, ConstructorRejectsNonsensicalConfigs) {
  std::vector<trace::CoarseTrace> pool{pattern_trace(std::string(10, '.'))};
  const auto build = [&](const ClusterConfig& cfg) {
    ClusterSim sim(cfg, pool, table(), rng::Stream(1));
  };

  auto negative_pause = base_config(core::PolicyKind::PauseAndMigrate, 1);
  negative_pause.policy_params.pause_time = -1.0;
  EXPECT_THROW(build(negative_pause), std::invalid_argument);

  auto negative_linger = base_config(core::PolicyKind::LingerLonger, 1);
  negative_linger.policy_params.linger_scale = -0.5;
  EXPECT_THROW(build(negative_linger), std::invalid_argument);

  auto zero_bandwidth = base_config(core::PolicyKind::LingerLonger, 1);
  zero_bandwidth.migration.bandwidth_bps = 0.0;
  EXPECT_THROW(build(zero_bandwidth), std::invalid_argument);

  auto negative_switch = base_config(core::PolicyKind::LingerLonger, 1);
  negative_switch.context_switch = -1e-6;
  EXPECT_THROW(build(negative_switch), std::invalid_argument);

  auto bad_faults = base_config(core::PolicyKind::LingerLonger, 1);
  bad_faults.faults.link.drop_probability = 1.5;
  EXPECT_THROW(build(bad_faults), std::invalid_argument);

  auto bad_checkpoint = base_config(core::PolicyKind::LingerLonger, 1);
  bad_checkpoint.checkpoint.interval = -10.0;
  EXPECT_THROW(build(bad_checkpoint), std::invalid_argument);

  EXPECT_NO_THROW(build(base_config(core::PolicyKind::LingerLonger, 1)));
}

TEST(ClusterEdge, AbortedMigrationReleasesReservedSlot) {
  // The destination crashes mid-transfer: the in-flight migration must
  // abort, release its reserved slot, and re-queue the job — leaving the
  // reservation ledger balanced (reserved slots == in-flight migrations).
  std::vector<trace::CoarseTrace> pool{
      pattern_trace(".." + std::string(400, 'B')),
      pattern_trace("BB" + std::string(400, '.'))};
  auto cfg = base_config(core::PolicyKind::ImmediateEviction, 2);
  // Owner returns at t=4 -> migration starts; destination dies at t=5,
  // mid-way through the ~3.4 s transfer, and recovers 20 s later.
  cfg.faults.crash.arrivals = fault::ArrivalProcess::fixed({5.0});
  cfg.faults.crash.exponential_downtime = false;
  cfg.faults.crash.mean_downtime = 20.0;

  ClusterSim sim(cfg, pool, table(), rng::Stream(2));
  sim.submit(30.0);
  sim.run_until_all_complete();

  EXPECT_EQ(sim.migration_aborts(), 1u);
  EXPECT_EQ(sim.inflight_migrations(), 0u);
  for (const auto& node : sim.node_snapshots()) {
    EXPECT_EQ(node.reserved, 0u);
  }
  EXPECT_EQ(sim.jobs().front().state, JobState::Done);
  EXPECT_GE(sim.jobs().front().restarts, 1u);

  verify::InvariantRegistry registry(verify::Mode::kAssert);
  verify::check_cluster_occupancy(sim, registry);
  for (const auto& job : sim.jobs()) verify::check_job_record(job, registry);
  EXPECT_EQ(registry.violations(), 0u);
}

}  // namespace
}  // namespace ll::cluster
