#include "cluster/job.hpp"

#include <gtest/gtest.h>

namespace ll::cluster {
namespace {

TEST(JobState, Names) {
  EXPECT_EQ(to_string(JobState::Queued), "queued");
  EXPECT_EQ(to_string(JobState::Running), "running");
  EXPECT_EQ(to_string(JobState::Lingering), "lingering");
  EXPECT_EQ(to_string(JobState::Paused), "paused");
  EXPECT_EQ(to_string(JobState::Migrating), "migrating");
  EXPECT_EQ(to_string(JobState::Done), "done");
  EXPECT_EQ(to_string(JobState::Checkpointing), "checkpointing");
}

JobRecord fresh_job() {
  JobRecord job;
  job.id = 1;
  job.cpu_demand = 600.0;
  job.remaining = 600.0;
  job.submit_time = 10.0;
  job.state = JobState::Queued;
  job.state_since = 10.0;
  return job;
}

TEST(JobRecord, AccumulatesStateTime) {
  JobRecord job = fresh_job();
  job.set_state(JobState::Running, 25.0);    // queued 15 s
  job.set_state(JobState::Lingering, 100.0); // running 75 s
  job.set_state(JobState::Migrating, 130.0); // lingering 30 s
  job.set_state(JobState::Running, 153.0);   // migrating 23 s
  job.set_state(JobState::Done, 653.0);      // running 500 s more

  EXPECT_DOUBLE_EQ(job.time_in(JobState::Queued), 15.0);
  EXPECT_DOUBLE_EQ(job.time_in(JobState::Running), 575.0);
  EXPECT_DOUBLE_EQ(job.time_in(JobState::Lingering), 30.0);
  EXPECT_DOUBLE_EQ(job.time_in(JobState::Migrating), 23.0);
  EXPECT_DOUBLE_EQ(job.time_in(JobState::Paused), 0.0);
}

TEST(JobRecord, FirstStartRecordedOnce) {
  JobRecord job = fresh_job();
  job.set_state(JobState::Running, 25.0);
  job.set_state(JobState::Paused, 30.0);
  job.set_state(JobState::Running, 40.0);
  ASSERT_TRUE(job.first_start.has_value());
  EXPECT_DOUBLE_EQ(*job.first_start, 25.0);
}

TEST(JobRecord, LingeringCountsAsStart) {
  JobRecord job = fresh_job();
  job.set_state(JobState::Lingering, 33.0);
  ASSERT_TRUE(job.first_start.has_value());
  EXPECT_DOUBLE_EQ(*job.first_start, 33.0);
}

TEST(JobRecord, CompletionRecorded) {
  JobRecord job = fresh_job();
  job.set_state(JobState::Running, 20.0);
  job.set_state(JobState::Done, 620.0);
  ASSERT_TRUE(job.completion.has_value());
  EXPECT_DOUBLE_EQ(*job.completion, 620.0);
  EXPECT_DOUBLE_EQ(job.turnaround(), 610.0);
  EXPECT_DOUBLE_EQ(job.execution_time(), 600.0);
}

TEST(JobRecord, SameStateTransitionIsNoOp) {
  JobRecord job = fresh_job();
  job.set_state(JobState::Queued, 50.0);
  // No time folded yet: still measured from the original state_since.
  job.set_state(JobState::Running, 60.0);
  EXPECT_DOUBLE_EQ(job.time_in(JobState::Queued), 50.0);
}

TEST(JobRecord, BackwardTimeThrows) {
  JobRecord job = fresh_job();
  job.set_state(JobState::Running, 25.0);
  EXPECT_THROW((void)(job.set_state(JobState::Done, 20.0)), std::logic_error);
}

TEST(JobRecord, HistoryRecordsEveryTransition) {
  JobRecord job = fresh_job();
  job.set_state(JobState::Running, 25.0);
  job.set_state(JobState::Lingering, 100.0);
  job.set_state(JobState::Done, 650.0);
  ASSERT_EQ(job.history.size(), 3u);
  EXPECT_DOUBLE_EQ(job.history[0].time, 25.0);
  EXPECT_EQ(job.history[0].to, JobState::Running);
  EXPECT_EQ(job.history[1].to, JobState::Lingering);
  EXPECT_EQ(job.history[2].to, JobState::Done);
  // Monotone timestamps.
  for (std::size_t i = 1; i < job.history.size(); ++i) {
    EXPECT_GE(job.history[i].time, job.history[i - 1].time);
  }
}

TEST(JobRecord, NoOpTransitionNotRecorded) {
  JobRecord job = fresh_job();
  job.set_state(JobState::Queued, 50.0);
  EXPECT_TRUE(job.history.empty());
}

TEST(JobRecord, MetricsRequireCompletion) {
  JobRecord job = fresh_job();
  EXPECT_THROW((void)(job.turnaround()), std::logic_error);
  EXPECT_THROW((void)(job.execution_time()), std::logic_error);
  job.set_state(JobState::Done, 100.0);  // never started: no first_start
  EXPECT_THROW((void)(job.execution_time()), std::logic_error);
  EXPECT_NO_THROW((void)job.turnaround());
}

}  // namespace
}  // namespace ll::cluster
