#include "cluster/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <thread>

#include "common/scenario_builders.hpp"
#include "util/runner.hpp"
#include "workload/burst_table.hpp"

namespace ll::cluster {
namespace {

using namespace ll::test_support;

TEST(WorkloadSpecs, MatchPaper) {
  EXPECT_EQ(workload_1().jobs, 128u);
  EXPECT_DOUBLE_EQ(workload_1().demand, 600.0);
  EXPECT_EQ(workload_2().jobs, 16u);
  EXPECT_DOUBLE_EQ(workload_2().demand, 1800.0);
}

TEST(OpenExperiment, CompletesAllJobs) {
  const auto pool = idle_pool();
  const auto report = run_open(small_experiment(core::PolicyKind::LingerLonger),
                               pool, workload::default_burst_table());
  EXPECT_EQ(report.completed, 8u);
  // 8 jobs x 20 s on 4 idle nodes: two waves, avg completion ~30 s.
  EXPECT_GT(report.avg_completion, 20.0);
  EXPECT_LT(report.avg_completion, 45.0);
  EXPECT_NEAR(report.family_time, 40.0, 5.0);
  EXPECT_DOUBLE_EQ(report.avg_paused, 0.0);
  EXPECT_DOUBLE_EQ(report.avg_migrating, 0.0);
  EXPECT_GT(report.wall_time, 0.0);
}

TEST(OpenExperiment, PercentilesAreOrdered) {
  const auto pool = idle_pool();
  const auto report = run_open(small_experiment(core::PolicyKind::LingerLonger),
                               pool, workload::default_burst_table());
  EXPECT_GT(report.p50_completion, 0.0);
  EXPECT_LE(report.p50_completion, report.p90_completion);
  EXPECT_LE(report.p90_completion, report.family_time + 1e-9);
}

TEST(JobLog, ExportsEveryTransition) {
  const auto pool = idle_pool();
  rng::Stream master(3);
  ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.recruitment = kInstantRule;
  ClusterSim sim(cfg, pool, workload::default_burst_table(),
                 master.fork("cluster"));
  sim.submit(20.0);
  sim.submit(20.0);
  sim.submit(20.0);  // third job must queue
  sim.run_until_all_complete();

  std::ostringstream out;
  write_job_log(sim.jobs(), out);
  const std::string log = out.str();
  EXPECT_NE(log.find("job,time,state"), std::string::npos);
  EXPECT_NE(log.find("0,0,queued"), std::string::npos);
  EXPECT_NE(log.find(",running"), std::string::npos);
  EXPECT_NE(log.find(",done"), std::string::npos);
  // One line per transition plus one submit line per job plus the header.
  std::size_t lines = 0;
  for (char c : log) {
    if (c == '\n') ++lines;
  }
  std::size_t expected = 1 + sim.jobs().size();
  for (const auto& job : sim.jobs()) expected += job.history.size();
  EXPECT_EQ(lines, expected);
}

TEST(OpenExperiment, StateBreakdownSumsToAvgCompletion) {
  const auto pool = idle_pool();
  const auto report = run_open(small_experiment(core::PolicyKind::PauseAndMigrate),
                               pool, workload::default_burst_table());
  const double sum = report.avg_queued + report.avg_running +
                     report.avg_lingering + report.avg_paused +
                     report.avg_migrating;
  EXPECT_NEAR(sum, report.avg_completion, 1e-6);
}

TEST(OpenExperiment, DeterministicInSeed) {
  const auto pool = idle_pool();
  const auto cfg = small_experiment(core::PolicyKind::LingerLonger);
  const auto a = run_open(cfg, pool, workload::default_burst_table());
  const auto b = run_open(cfg, pool, workload::default_burst_table());
  EXPECT_DOUBLE_EQ(a.avg_completion, b.avg_completion);
  EXPECT_DOUBLE_EQ(a.family_time, b.family_time);
}

TEST(ClosedExperiment, ThroughputOnIdleClusterNearNodeCount) {
  const auto pool = idle_pool();
  auto cfg = small_experiment(core::PolicyKind::LingerLonger);
  cfg.workload = WorkloadSpec{8, 50.0};
  const auto report =
      run_closed(cfg, pool, workload::default_burst_table(), 600.0);
  // 4 idle nodes permanently busy with foreign work: ~4 CPU-s per second.
  EXPECT_NEAR(report.throughput, 4.0, 0.3);
  EXPECT_GT(report.completed, 10u);
}

TEST(ClosedExperiment, RejectsBadDuration) {
  const auto pool = idle_pool();
  EXPECT_THROW(
      (void)run_closed(small_experiment(core::PolicyKind::LingerLonger), pool,
                       workload::default_burst_table(), 0.0),
      std::invalid_argument);
}

TEST(Replicate, RunsAllSeedsAndKeepsOrder) {
  std::vector<std::uint64_t> seen;
  std::mutex mu;
  const auto reports = replicate(4, 7, [&](std::uint64_t seed) {
    {
      std::scoped_lock lock(mu);
      seen.push_back(seed);
    }
    ClusterReport r;
    r.throughput = static_cast<double>(seed % 1000);
    return r;
  });
  EXPECT_EQ(reports.size(), 4u);
  EXPECT_EQ(seen.size(), 4u);
  // Seeds are distinct.
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(Replicate, ZeroReplicationsThrows) {
  EXPECT_THROW(
      replicate(0, 1, [](std::uint64_t) { return ClusterReport{}; }),
      std::invalid_argument);
}

TEST(Replicate, ThrowingReplicationPropagatesWithoutHanging) {
  EXPECT_THROW(
      (void)replicate(8, 3,
                      [](std::uint64_t seed) -> ClusterReport {
                        if (seed % 2 == 0) {
                          throw std::runtime_error("replication failed");
                        }
                        return ClusterReport{};
                      }),
      std::runtime_error);
  // The shared pool survives a throwing batch and stays usable.
  const auto reports =
      replicate(4, 3, [](std::uint64_t) { return ClusterReport{}; });
  EXPECT_EQ(reports.size(), 4u);
}

TEST(Replicate, ThreadCountStaysBoundedByTheSharedPool) {
  std::mutex mu;
  std::set<std::thread::id> ids;
  (void)replicate(64, 9, [&](std::uint64_t) {
    {
      std::scoped_lock lock(mu);
      ids.insert(std::this_thread::get_id());
    }
    return ClusterReport{};
  });
  // The old implementation spawned 64 std::async threads; the pooled one is
  // bounded by the shared runner's worker count.
  EXPECT_LE(ids.size(), util::TaskRunner::shared().thread_count());
}

TEST(Replicate, DeterministicSeedDerivation) {
  auto run = [](std::uint64_t base) {
    std::vector<std::uint64_t> seeds;
    std::mutex mu;
    (void)replicate(3, base, [&](std::uint64_t seed) {
      std::scoped_lock lock(mu);
      seeds.push_back(seed);
      return ClusterReport{};
    });
    std::sort(seeds.begin(), seeds.end());
    return seeds;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Summarize, ComputesCiOverMetric) {
  std::vector<ClusterReport> reports(3);
  reports[0].throughput = 10.0;
  reports[1].throughput = 12.0;
  reports[2].throughput = 14.0;
  const auto ci = summarize(
      reports, [](const ClusterReport& r) { return r.throughput; });
  EXPECT_DOUBLE_EQ(ci.mean, 12.0);
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_EQ(ci.n, 3u);
}

TEST(EndToEndPolicies, LingerBeatsEvictionOnBusyCluster) {
  // A cluster whose nodes alternate moderate busy episodes: lingering
  // policies should deliver clearly more throughput than eviction ones.
  rng::Stream master(5);
  trace::CoarseGenConfig gen;
  gen.duration = 4 * 3600.0;
  gen.start_hour = 9.0;  // working hours: nodes actually get recruited
  auto pool = trace::generate_machine_pool(gen, 4, master);

  auto run_policy = [&](core::PolicyKind policy) {
    ExperimentConfig cfg;
    cfg.cluster.node_count = 8;
    cfg.cluster.policy = policy;
    cfg.workload = WorkloadSpec{16, 300.0};
    cfg.seed = 11;
    return run_closed(cfg, pool, workload::default_burst_table(), 1800.0);
  };

  const auto ll = run_policy(core::PolicyKind::LingerLonger);
  const auto ie = run_policy(core::PolicyKind::ImmediateEviction);
  EXPECT_GT(ll.throughput, ie.throughput * 1.1);
  // Foreground delay stays within the paper's bound.
  EXPECT_LT(ll.foreground_delay, 0.01);
}

}  // namespace
}  // namespace ll::cluster
