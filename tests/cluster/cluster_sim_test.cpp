#include "cluster/cluster_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/scenario_builders.hpp"
#include "workload/burst_table.hpp"

namespace ll::cluster {
namespace {

using namespace ll::test_support;

TEST(ClusterSim, RejectsBadConstruction) {
  auto cfg = base_config(core::PolicyKind::LingerLonger, 2);
  std::vector<trace::CoarseTrace> empty_pool;
  EXPECT_THROW(ClusterSim(cfg, empty_pool, table(), rng::Stream(1)),
               std::invalid_argument);

  std::vector<trace::CoarseTrace> pool{pattern_trace("...")};
  cfg.node_count = 0;
  EXPECT_THROW(ClusterSim(cfg, pool, table(), rng::Stream(1)),
               std::invalid_argument);

  cfg.node_count = 2;
  std::vector<trace::CoarseTrace> mixed{pattern_trace("..."),
                                        trace::CoarseTrace(1.0)};
  mixed[1].push({0.0, 0, false});
  EXPECT_THROW(ClusterSim(cfg, mixed, table(), rng::Stream(1)),
               std::invalid_argument);
}

TEST(ClusterSim, RejectsBadDemand) {
  auto pool = uniform_pool("....");
  ClusterSim sim(base_config(core::PolicyKind::LingerLonger, 1), pool, table(),
                 rng::Stream(1));
  EXPECT_THROW((void)(sim.submit(0.0)), std::invalid_argument);
  EXPECT_THROW((void)(sim.submit(-5.0)), std::invalid_argument);
}

TEST(ClusterSim, SingleJobOnIdleClusterCompletesNearDemand) {
  auto pool = uniform_pool(std::string(400, '.'));
  ClusterSim sim(base_config(core::PolicyKind::LingerLonger, 1), pool, table(),
                 rng::Stream(2));
  sim.submit(100.0);
  sim.run_until_all_complete();
  const JobRecord& job = sim.jobs().front();
  ASSERT_TRUE(job.completion.has_value());
  // Fully idle node: effective rate ~ fcsr(~0) ~ 1.
  EXPECT_NEAR(*job.completion, 100.0, 2.0);
  EXPECT_EQ(job.state, JobState::Done);
  EXPECT_NEAR(sim.delivered_cpu(), 100.0, 1e-6);
  EXPECT_EQ(sim.migrations_started(), 0u);
}

TEST(ClusterSim, QueueingWhenJobsExceedNodes) {
  auto pool = uniform_pool(std::string(400, '.'));
  ClusterSim sim(base_config(core::PolicyKind::ImmediateEviction, 1), pool,
                 table(), rng::Stream(3));
  sim.submit(50.0);
  sim.submit(50.0);
  sim.run_until_all_complete();
  const auto& jobs = sim.jobs();
  // Second job waits for the first.
  EXPECT_NEAR(jobs[1].time_in(JobState::Queued), *jobs[0].completion, 3.0);
  EXPECT_GT(*jobs[1].completion, *jobs[0].completion + 45.0);
}

TEST(ClusterSim, ObservedIdleFractionOnIdlePool) {
  auto pool = uniform_pool(std::string(100, '.'));
  ClusterSim sim(base_config(core::PolicyKind::LingerLonger, 4), pool, table(),
                 rng::Stream(4));
  sim.submit(30.0);
  sim.run_until_all_complete();
  EXPECT_DOUBLE_EQ(sim.observed_idle_fraction(), 1.0);
}

TEST(ClusterSim, ImmediateEvictionMigratesOnOwnerReturn) {
  // Node 0: idle 4 windows, then busy for the rest. Node 1: always idle.
  // Deterministic placement puts the job on node 0; IE must migrate it the
  // moment the owner returns.
  std::vector<trace::CoarseTrace> pool{
      pattern_trace("...." + std::string(200, 'B')),
      pattern_trace(std::string(204, '.'))};
  auto cfg = base_config(core::PolicyKind::ImmediateEviction, 2);
  ClusterSim sim(cfg, pool, table(), rng::Stream(1));
  sim.submit(200.0);
  sim.run_until_all_complete();
  const JobRecord& job = sim.jobs().front();
  EXPECT_EQ(sim.migrations_started(), 1u);
  EXPECT_NEAR(job.time_in(JobState::Migrating), migration_cost(cfg), 1e-6);
  EXPECT_DOUBLE_EQ(job.time_in(JobState::Lingering), 0.0);
  EXPECT_EQ(job.state, JobState::Done);
}

TEST(ClusterSim, ImmediateEvictionSuspendsWithoutTargetAndResumes) {
  // One node: idle 2 windows, busy 5 windows, idle again. No target exists,
  // so IE suspends in place and resumes when the owner leaves.
  auto pool = uniform_pool("..BBBBB" + std::string(200, '.'));
  auto cfg = base_config(core::PolicyKind::ImmediateEviction, 1);
  ClusterSim sim(cfg, pool, table(), rng::Stream(5));
  sim.submit(60.0);
  sim.run_until_all_complete();
  const JobRecord& job = sim.jobs().front();
  EXPECT_EQ(sim.migrations_started(), 0u);
  // Paused through the busy episode (10 s), modulo tick alignment.
  EXPECT_NEAR(job.time_in(JobState::Paused), 10.0, 2.1);
  EXPECT_DOUBLE_EQ(job.time_in(JobState::Lingering), 0.0);
  EXPECT_EQ(job.state, JobState::Done);
}

TEST(ClusterSim, PauseAndMigrateWaitsGracePeriod) {
  // Busy episode longer than pause_time: job pauses 8 s then migrates.
  std::vector<trace::CoarseTrace> pool{
      pattern_trace(".." + std::string(300, 'B')),
      pattern_trace(std::string(302, '.'))};
  auto cfg = base_config(core::PolicyKind::PauseAndMigrate, 2);
  cfg.policy_params.pause_time = 8.0;
  ClusterSim sim(cfg, pool, table(), rng::Stream(1));
  sim.submit(100.0);
  sim.run_until_all_complete();
  const JobRecord& job = sim.jobs().front();
  EXPECT_EQ(sim.migrations_started(), 1u);
  EXPECT_NEAR(job.time_in(JobState::Paused), 8.0, 1e-6);
  EXPECT_NEAR(job.time_in(JobState::Migrating), migration_cost(cfg), 1e-6);
  EXPECT_EQ(job.state, JobState::Done);
}

TEST(ClusterSim, PauseAndMigrateResumesOnShortEpisode) {
  // Busy episode (4 s) shorter than pause_time (20 s): no migration.
  auto pool = uniform_pool("..BB" + std::string(200, '.'));
  auto cfg = base_config(core::PolicyKind::PauseAndMigrate, 1);
  cfg.policy_params.pause_time = 20.0;
  ClusterSim sim(cfg, pool, table(), rng::Stream(6));
  sim.submit(60.0);
  sim.run_until_all_complete();
  EXPECT_EQ(sim.migrations_started(), 0u);
  const JobRecord& job = sim.jobs().front();
  EXPECT_NEAR(job.time_in(JobState::Paused), 4.0, 2.1);
}

TEST(ClusterSim, LingerLongerRunsThroughShortEpisodes) {
  // Busy 2 windows (4 s) at 50%: T_lingr = (1-0)/(0.5-0) * 3.4 ~ 6.8 s > 4 s,
  // so the job lingers through the episode and never migrates.
  auto pool = uniform_pool("..BB" + std::string(200, '.'));
  auto cfg = base_config(core::PolicyKind::LingerLonger, 1);
  ClusterSim sim(cfg, pool, table(), rng::Stream(7));
  sim.submit(60.0);
  sim.run_until_all_complete();
  EXPECT_EQ(sim.migrations_started(), 0u);
  const JobRecord& job = sim.jobs().front();
  EXPECT_NEAR(job.time_in(JobState::Lingering), 4.0, 2.1);
  EXPECT_DOUBLE_EQ(job.time_in(JobState::Paused), 0.0);
}

TEST(ClusterSim, LingerLongerMigratesAfterLingerDuration) {
  std::vector<trace::CoarseTrace> pool{
      pattern_trace(".." + std::string(400, 'B')),
      pattern_trace(std::string(402, '.'))};
  auto cfg = base_config(core::PolicyKind::LingerLonger, 2);
  ClusterSim sim(cfg, pool, table(), rng::Stream(1));
  sim.submit(150.0);
  sim.run_until_all_complete();
  const JobRecord& job = sim.jobs().front();
  EXPECT_EQ(sim.migrations_started(), 1u);
  // h = 0.5, l = 0 (idle windows have zero cpu in this pool).
  const double t_lingr = core::linger_duration(0.5, 0.0, migration_cost(cfg));
  EXPECT_NEAR(job.time_in(JobState::Lingering), t_lingr, 2.5);
  EXPECT_NEAR(job.time_in(JobState::Migrating), migration_cost(cfg), 1e-6);
  EXPECT_EQ(job.state, JobState::Done);
}

TEST(ClusterSim, OracleMigratesImmediatelyOnLongEpisode) {
  // Episode lasts ~800 s, far beyond the cost-model tail (~6.8 s): the
  // oracle migrates at the first tick of the episode with no linger wait.
  std::vector<trace::CoarseTrace> pool{
      pattern_trace(".." + std::string(400, 'B')),
      pattern_trace(std::string(402, '.'))};
  auto cfg = base_config(core::PolicyKind::OracleLinger, 2);
  ClusterSim sim(cfg, pool, table(), rng::Stream(1));
  sim.submit(150.0);
  sim.run_until_all_complete();
  const JobRecord& job = sim.jobs().front();
  EXPECT_EQ(sim.migrations_started(), 1u);
  // No lingering before migrating (the 2T rule would have waited ~6.8 s).
  EXPECT_LT(job.time_in(JobState::Lingering), 0.5);
  EXPECT_EQ(job.state, JobState::Done);
}

TEST(ClusterSim, OracleRidesOutShortEpisode) {
  // Episode of 4 s < tail (~6.8 s): the oracle knows migration cannot pay
  // and stays put, unlike an eager policy.
  auto pool = uniform_pool("..BB" + std::string(200, '.'));
  auto cfg = base_config(core::PolicyKind::OracleLinger, 1);
  ClusterSim sim(cfg, pool, table(), rng::Stream(2));
  sim.submit(60.0);
  sim.run_until_all_complete();
  EXPECT_EQ(sim.migrations_started(), 0u);
  EXPECT_NEAR(sim.jobs().front().time_in(JobState::Lingering), 4.0, 2.1);
}

TEST(ClusterSim, LingerForeverNeverMigrates) {
  std::vector<trace::CoarseTrace> pool{
      pattern_trace(".." + std::string(400, 'B')),
      pattern_trace(std::string(402, '.'))};
  auto cfg = base_config(core::PolicyKind::LingerForever, 2);
  ClusterSim sim(cfg, pool, table(), rng::Stream(1));
  sim.submit(150.0);
  sim.run_until_all_complete();
  EXPECT_EQ(sim.migrations_started(), 0u);
  EXPECT_EQ(sim.jobs().front().state, JobState::Done);
}

TEST(ClusterSim, LingeringJobProgressesAtLeftoverRate) {
  // Node busy at 50% forever; LF job of 30 CPU-seconds takes ~ 30 / rate(0.5).
  auto pool = uniform_pool(std::string(400, 'B'), 0.5);
  auto cfg = base_config(core::PolicyKind::LingerForever, 1);
  ClusterSim sim(cfg, pool, table(), rng::Stream(8));
  sim.submit(30.0);
  sim.run_until_all_complete();
  const JobRecord& job = sim.jobs().front();
  const auto rates =
      node::EffectiveRateTable::analytic(table(), cfg.context_switch);
  const double expected = 30.0 / rates.foreign_rate(0.5);
  EXPECT_NEAR(*job.completion, expected, expected * 0.05);
}

TEST(ClusterSim, ForegroundDelayTrackedOnlyWhileSharing) {
  auto pool = uniform_pool(std::string(200, 'B'), 0.5);
  auto cfg = base_config(core::PolicyKind::LingerForever, 1);
  ClusterSim sim(cfg, pool, table(), rng::Stream(9));
  sim.submit(20.0);
  sim.run_until_all_complete();
  const double delay = sim.foreground_delay_ratio();
  EXPECT_GT(delay, 0.0);
  EXPECT_LT(delay, 0.02);  // paper: ~1% on a shared node
}

TEST(ClusterSim, MultiOccupancyRejectsZero) {
  auto pool = uniform_pool("....");
  auto cfg = base_config(core::PolicyKind::LingerLonger, 1);
  cfg.max_foreign_per_node = 0;
  EXPECT_THROW(ClusterSim(cfg, pool, table(), rng::Stream(1)),
               std::invalid_argument);
}

TEST(ClusterSim, CoResidentJobsProcessorShare) {
  // Two equal jobs sharing one idle node each get half the rate: both finish
  // together at ~2x the solo time.
  auto pool = uniform_pool(std::string(400, '.'));
  auto cfg = base_config(core::PolicyKind::LingerLonger, 1);
  cfg.max_foreign_per_node = 2;
  ClusterSim sim(cfg, pool, table(), rng::Stream(2));
  sim.submit(50.0);
  sim.submit(50.0);
  sim.run_until_all_complete();
  EXPECT_NEAR(*sim.jobs()[0].completion, 100.0, 3.0);
  EXPECT_NEAR(*sim.jobs()[1].completion, 100.0, 3.0);
  // No queueing happened: both were resident from the start.
  EXPECT_DOUBLE_EQ(sim.jobs()[1].time_in(JobState::Queued), 0.0);
}

TEST(ClusterSim, SurvivorInheritsFreedShare) {
  // Jobs of 30 and 90 cpu-s share a node. Phase 1: both at rate 1/2 until
  // the small one finishes at t=60. Phase 2: the big one runs alone at rate
  // 1 for its remaining 60 => completes ~120.
  auto pool = uniform_pool(std::string(400, '.'));
  auto cfg = base_config(core::PolicyKind::LingerLonger, 1);
  cfg.max_foreign_per_node = 2;
  ClusterSim sim(cfg, pool, table(), rng::Stream(3));
  sim.submit(30.0);
  sim.submit(90.0);
  sim.run_until_all_complete();
  EXPECT_NEAR(*sim.jobs()[0].completion, 60.0, 3.0);
  EXPECT_NEAR(*sim.jobs()[1].completion, 120.0, 4.0);
}

TEST(ClusterSim, PlacementSpreadsBeforeSharing) {
  // Two nodes with two slots each; two jobs must land on distinct nodes.
  auto pool = uniform_pool(std::string(400, '.'));
  auto cfg = base_config(core::PolicyKind::LingerLonger, 2);
  cfg.max_foreign_per_node = 2;
  ClusterSim sim(cfg, pool, table(), rng::Stream(4));
  sim.submit(50.0);
  sim.submit(50.0);
  sim.run_until_all_complete();
  // Spread across nodes => full rate each, ~50 s completions.
  EXPECT_NEAR(*sim.jobs()[0].completion, 50.0, 2.0);
  EXPECT_NEAR(*sim.jobs()[1].completion, 50.0, 2.0);
}

TEST(ClusterSim, CoResidentJobsSplitDonatedMemory) {
  // ~12 MB free: one 8 MB guest fits, two do not — the pair runs slower
  // than pure processor sharing would predict.
  trace::CoarseTrace t(2.0);
  for (int i = 0; i < 4000; ++i) t.push({0.0, 12288, false});
  std::vector<trace::CoarseTrace> pool{t};
  auto cfg = base_config(core::PolicyKind::LingerLonger, 1);
  cfg.max_foreign_per_node = 2;
  ClusterSim sim(cfg, pool, table(), rng::Stream(5));
  sim.submit(50.0);
  sim.submit(50.0);
  sim.run_until_all_complete(1e6);
  // Pure PS would finish at ~100 s; memory pressure must push beyond that.
  EXPECT_GT(*sim.jobs()[1].completion, 110.0);
}

TEST(ClusterSim, OwnerRestorePenaltyChargedOnEviction) {
  // IE evicts from node 0 when its owner returns; with a restore penalty the
  // owner's accounted delay must grow by exactly penalty / foreground work.
  std::vector<trace::CoarseTrace> pool{
      pattern_trace("...." + std::string(200, 'B')),
      pattern_trace(std::string(204, '.'))};
  auto run_with = [&](double penalty) {
    auto cfg = base_config(core::PolicyKind::ImmediateEviction, 2);
    cfg.owner_restore_penalty = penalty;
    ClusterSim sim(cfg, pool, table(), rng::Stream(1));
    sim.submit(100.0);
    sim.run_until_all_complete();
    EXPECT_EQ(sim.migrations_started(), 1u);
    return sim.foreground_delay_ratio();
  };
  const double without = run_with(0.0);
  const double with = run_with(5.0);
  EXPECT_GT(with, without + 1e-6);
}

TEST(ClusterSim, NoRestorePenaltyWhenLeavingIdleNode) {
  // A job completing on an idle node (owner absent, trickle CPU below the
  // recruitment threshold) displaces nothing the owner needs right now: the
  // delay ratio must be identical with and without the penalty.
  trace::CoarseTrace t(2.0);
  for (int i = 0; i < 200; ++i) t.push({0.05, 65536, false});
  std::vector<trace::CoarseTrace> pool{t};
  auto run_with = [&](double penalty) {
    auto cfg = base_config(core::PolicyKind::ImmediateEviction, 1);
    cfg.owner_restore_penalty = penalty;
    ClusterSim sim(cfg, pool, table(), rng::Stream(2));
    sim.submit(50.0);
    sim.run_until_all_complete();
    return sim.foreground_delay_ratio();
  };
  EXPECT_DOUBLE_EQ(run_with(0.0), run_with(10.0));
}

TEST(ClusterSim, DeterministicAcrossRuns) {
  auto pool = uniform_pool("..BBBB......BB" + std::string(100, '.'), 0.4);
  auto cfg = base_config(core::PolicyKind::LingerLonger, 3);
  double completions[2];
  for (int run = 0; run < 2; ++run) {
    ClusterSim sim(cfg, pool, table(), rng::Stream(11));
    sim.submit(40.0);
    sim.submit(40.0);
    sim.run_until_all_complete();
    completions[run] = *sim.jobs()[1].completion;
  }
  EXPECT_DOUBLE_EQ(completions[0], completions[1]);
}

TEST(ClusterSim, ClosedModeHoldsPopulation) {
  auto pool = uniform_pool(std::string(100, '.'));
  auto cfg = base_config(core::PolicyKind::LingerLonger, 2);
  ClusterSim sim(cfg, pool, table(), rng::Stream(12));
  sim.set_completion_callback([&sim](const JobRecord&) { sim.submit(10.0); });
  sim.submit(10.0);
  sim.submit(10.0);
  sim.run_for(200.0);
  // ~2 nodes fully busy for 200 s at rate ~1.
  EXPECT_NEAR(sim.delivered_cpu(), 400.0, 20.0);
  EXPECT_EQ(sim.incomplete_jobs(), 2u);
  EXPECT_GT(sim.jobs().size(), 30u);
}

TEST(ClusterSim, RunForZeroIsNoOp) {
  auto pool = uniform_pool("....");
  ClusterSim sim(base_config(core::PolicyKind::LingerLonger, 1), pool, table(),
                 rng::Stream(13));
  sim.run_for(0.0);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_THROW((void)(sim.run_for(-1.0)), std::invalid_argument);
}

TEST(ClusterSim, HorizonGuardThrows) {
  // A job that can never finish: node busy at 100%... use 0.99 so the rate
  // is ~0 but placement still works; horizon must trip.
  auto pool = uniform_pool(std::string(50, 'B'), 0.99);
  auto cfg = base_config(core::PolicyKind::LingerForever, 1);
  ClusterSim sim(cfg, pool, table(), rng::Stream(14));
  sim.submit(1e5);
  EXPECT_THROW(sim.run_until_all_complete(/*max_horizon=*/2000.0),
               std::runtime_error);
}

TEST(ClusterSim, MemoryPressureSlowsForeignJob) {
  // Local jobs hog memory: only ~2 MB free, so the 8 MB foreign working set
  // is mostly non-resident and progress crawls.
  auto starved_pool = std::vector<trace::CoarseTrace>{
      pattern_trace(std::string(4000, '.'), 0.5, /*mem_free=*/2048)};
  auto roomy_pool = std::vector<trace::CoarseTrace>{
      pattern_trace(std::string(4000, '.'), 0.5, /*mem_free=*/65536)};
  auto cfg = base_config(core::PolicyKind::LingerForever, 1);

  ClusterSim starved(cfg, starved_pool, table(), rng::Stream(15));
  starved.submit(50.0);
  starved.run_until_all_complete(1e6);

  ClusterSim roomy(cfg, roomy_pool, table(), rng::Stream(15));
  roomy.submit(50.0);
  roomy.run_until_all_complete();

  EXPECT_GT(*starved.jobs().front().completion,
            3.0 * *roomy.jobs().front().completion);

  // With the memory model off, pressure is invisible.
  cfg.model_memory = false;
  ClusterSim ignored(cfg, starved_pool, table(), rng::Stream(15));
  ignored.submit(50.0);
  ignored.run_until_all_complete();
  EXPECT_NEAR(*ignored.jobs().front().completion,
              *roomy.jobs().front().completion, 2.0);
}

TEST(ClusterSim, IdleUtilizationMeasuredFromPool) {
  // Idle windows at 5% cpu (below the 10% threshold).
  trace::CoarseTrace t(2.0);
  for (int i = 0; i < 100; ++i) t.push({0.05, 65536, false});
  std::vector<trace::CoarseTrace> pool{t};
  auto cfg = base_config(core::PolicyKind::LingerLonger, 1);
  ClusterSim sim(cfg, pool, table(), rng::Stream(16));
  EXPECT_NEAR(sim.idle_utilization(), 0.05, 1e-9);

  cfg.idle_utilization_estimate = 0.12;
  ClusterSim overridden(cfg, pool, table(), rng::Stream(16));
  EXPECT_DOUBLE_EQ(overridden.idle_utilization(), 0.12);
}

TEST(ClusterSim, StateTimesSumToTurnaround) {
  std::vector<trace::CoarseTrace> pool{
      pattern_trace("..BBBBBBBB" + std::string(300, '.')),
      pattern_trace(std::string(310, 'B'), 0.3)};
  auto cfg = base_config(core::PolicyKind::LingerLonger, 2);
  ClusterSim sim(cfg, pool, table(), rng::Stream(17));
  for (int i = 0; i < 4; ++i) sim.submit(50.0);
  sim.run_until_all_complete();
  for (const JobRecord& job : sim.jobs()) {
    double total = 0.0;
    for (std::size_t s = 0; s < kJobStateCount; ++s) {
      total += job.state_time[s];
    }
    EXPECT_NEAR(total, job.turnaround(), 1e-6) << "job " << job.id;
  }
}

}  // namespace
}  // namespace ll::cluster
