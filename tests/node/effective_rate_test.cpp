#include "node/effective_rate.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ll::node {
namespace {

TEST(EffectiveRate, AnalyticTableMonotoneRate) {
  const auto table = EffectiveRateTable::analytic(
      workload::default_burst_table(), 100e-6);
  // foreign_rate falls as owner utilization rises.
  double prev = table.foreign_rate(0.0);
  for (double u = 0.05; u <= 1.0; u += 0.05) {
    const double cur = table.foreign_rate(u);
    EXPECT_LT(cur, prev) << "u=" << u;
    prev = cur;
  }
}

TEST(EffectiveRate, RateBoundedByLeftover) {
  const auto table = EffectiveRateTable::analytic(
      workload::default_burst_table(), 100e-6);
  for (double u = 0.0; u <= 1.0; u += 0.1) {
    EXPECT_LE(table.foreign_rate(u), 1.0 - u + 1e-12);
    EXPECT_GE(table.foreign_rate(u), 0.0);
  }
}

TEST(EffectiveRate, FcsrHighForCheapSwitches) {
  const auto table = EffectiveRateTable::analytic(
      workload::default_burst_table(), 100e-6);
  for (double u : {0.1, 0.5, 0.9}) {
    EXPECT_GT(table.fcsr(u), 0.90) << u;
    EXPECT_LE(table.fcsr(u), 1.0) << u;
  }
}

TEST(EffectiveRate, LdrSmallAndPositive) {
  const auto table = EffectiveRateTable::analytic(
      workload::default_burst_table(), 100e-6);
  for (double u : {0.1, 0.5, 0.9}) {
    EXPECT_GT(table.ldr(u), 0.0) << u;
    EXPECT_LT(table.ldr(u), 0.02) << u;
  }
}

TEST(EffectiveRate, ClampsOutOfRangeUtilization) {
  const auto table = EffectiveRateTable::analytic(
      workload::default_burst_table(), 100e-6);
  EXPECT_DOUBLE_EQ(table.fcsr(-0.5), table.fcsr(0.0));
  EXPECT_DOUBLE_EQ(table.fcsr(1.5), table.fcsr(1.0));
  EXPECT_DOUBLE_EQ(table.foreign_rate(2.0), 0.0);  // (1-u) clamped to 0
}

TEST(EffectiveRate, SimulatedAgreesWithAnalytic) {
  const auto& bursts = workload::default_burst_table();
  const auto analytic = EffectiveRateTable::analytic(bursts, 300e-6);
  const auto simulated =
      EffectiveRateTable::simulated(bursts, 300e-6, 4000.0, rng::Stream(3));
  for (double u : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(simulated.fcsr(u), analytic.fcsr(u), 0.015) << u;
    EXPECT_NEAR(simulated.ldr(u), analytic.ldr(u), analytic.ldr(u) * 0.25 + 1e-4)
        << u;
  }
}

TEST(EffectiveRate, InterpolationIsContinuous) {
  const auto table = EffectiveRateTable::analytic(
      workload::default_burst_table(), 100e-6);
  // No jumps between adjacent evaluations.
  double prev = table.fcsr(0.0);
  for (double u = 0.001; u <= 1.0; u += 0.001) {
    const double cur = table.fcsr(u);
    EXPECT_LT(std::abs(cur - prev), 0.01) << u;
    prev = cur;
  }
}

TEST(EffectiveRate, BiggerSwitchCostLowersRates) {
  const auto& bursts = workload::default_burst_table();
  const auto cheap = EffectiveRateTable::analytic(bursts, 100e-6);
  const auto costly = EffectiveRateTable::analytic(bursts, 1000e-6);
  for (double u : {0.2, 0.5, 0.8}) {
    EXPECT_GT(cheap.fcsr(u), costly.fcsr(u)) << u;
    EXPECT_LT(cheap.ldr(u), costly.ldr(u)) << u;
  }
}

}  // namespace
}  // namespace ll::node
