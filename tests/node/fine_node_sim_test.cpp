#include "node/fine_node_sim.hpp"

#include <gtest/gtest.h>

#include "node/effective_rate.hpp"

namespace ll::node {
namespace {

FineNodeConfig config_at(double u, double cs = 100e-6, double dur = 2000.0) {
  FineNodeConfig c;
  c.utilization = u;
  c.context_switch = cs;
  c.duration = dur;
  return c;
}

TEST(FineNodeSim, RejectsBadConfig) {
  const auto& table = workload::default_burst_table();
  EXPECT_THROW((void)(simulate_fine_node(config_at(0.0), table, rng::Stream(1))),
               std::invalid_argument);
  EXPECT_THROW((void)(simulate_fine_node(config_at(1.0), table, rng::Stream(1))),
               std::invalid_argument);
  EXPECT_THROW((void)(simulate_fine_node(config_at(0.5, -1e-6), table, rng::Stream(1))),
               std::invalid_argument);
  EXPECT_THROW((void)(simulate_fine_node(config_at(0.5, 1e-4, 0.0), table, rng::Stream(1))),
               std::invalid_argument);
}

TEST(FineNodeSim, Deterministic) {
  const auto& table = workload::default_burst_table();
  const auto a = simulate_fine_node(config_at(0.3), table, rng::Stream(7));
  const auto b = simulate_fine_node(config_at(0.3), table, rng::Stream(7));
  EXPECT_DOUBLE_EQ(a.local_cpu, b.local_cpu);
  EXPECT_DOUBLE_EQ(a.foreign_cpu, b.foreign_cpu);
  EXPECT_EQ(a.preemptions, b.preemptions);
}

TEST(FineNodeSim, ConservationOfTime) {
  const auto& table = workload::default_burst_table();
  const auto r = simulate_fine_node(config_at(0.4), table, rng::Stream(2));
  // Wall = local CPU + its switch delays + idle cycles offered.
  EXPECT_NEAR(r.wall, r.local_cpu + r.local_delay + r.idle_cpu, 1e-6);
  // Foreign never exceeds the idle cycles offered.
  EXPECT_LE(r.foreign_cpu, r.idle_cpu);
  EXPECT_GE(r.foreign_cpu, 0.0);
}

TEST(FineNodeSim, UtilizationRealized) {
  const auto& table = workload::default_burst_table();
  const auto r = simulate_fine_node(config_at(0.6, 100e-6, 5000.0), table,
                                    rng::Stream(3));
  EXPECT_NEAR(r.local_cpu / (r.local_cpu + r.idle_cpu), 0.6, 0.04);
}

TEST(FineNodeSim, NoForeignJobMeansNoDelayAndNoStealing) {
  const auto& table = workload::default_burst_table();
  FineNodeConfig c = config_at(0.5);
  c.foreign_present = false;
  const auto r = simulate_fine_node(c, table, rng::Stream(4));
  EXPECT_DOUBLE_EQ(r.local_delay, 0.0);
  EXPECT_DOUBLE_EQ(r.foreign_cpu, 0.0);
  EXPECT_EQ(r.preemptions, 0u);
  EXPECT_GT(r.idle_cpu, 0.0);
}

TEST(FineNodeSim, ZeroContextSwitchIsPerfect) {
  const auto& table = workload::default_burst_table();
  const auto r = simulate_fine_node(config_at(0.5, 0.0), table, rng::Stream(5));
  EXPECT_DOUBLE_EQ(r.ldr(), 0.0);
  EXPECT_DOUBLE_EQ(r.fcsr(), 1.0);
}

TEST(FineNodeSim, PaperHeadlineNumbers) {
  // Paper §4.1: at a 100 us effective context switch, foreground delay is
  // about 1% (and stays under 5% to 300 us); the foreign job captures over
  // 90% of idle cycles at every utilization level.
  const auto& table = workload::default_burst_table();
  for (double u : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto r =
        simulate_fine_node(config_at(u, 100e-6, 3000.0), table, rng::Stream(6));
    EXPECT_LT(r.ldr(), 0.02) << "u=" << u;
    EXPECT_GT(r.fcsr(), 0.90) << "u=" << u;
  }
}

TEST(FineNodeSim, DelayGrowsWithContextSwitchCost) {
  const auto& table = workload::default_burst_table();
  const auto r100 =
      simulate_fine_node(config_at(0.3, 100e-6), table, rng::Stream(8));
  const auto r500 =
      simulate_fine_node(config_at(0.3, 500e-6), table, rng::Stream(8));
  EXPECT_GT(r500.ldr(), r100.ldr());
  EXPECT_LT(r500.fcsr(), r100.fcsr());
}

TEST(FineNodeSim, PreemptionsOnlyWhenForeignWasWarm) {
  const auto& table = workload::default_burst_table();
  const auto r = simulate_fine_node(config_at(0.5), table, rng::Stream(9));
  // Each preemption charges exactly one context switch to the local side.
  EXPECT_NEAR(r.local_delay,
              static_cast<double>(r.preemptions) * 100e-6, 1e-9);
}

// Simulation must agree with the closed-form expectations (they share only
// the H2 model, not code paths).
class ClosedFormSweep : public ::testing::TestWithParam<double> {};

TEST_P(ClosedFormSweep, SimMatchesExpectation) {
  const double u = GetParam();
  const auto& table = workload::default_burst_table();
  const auto sim =
      simulate_fine_node(config_at(u, 300e-6, 8000.0), table, rng::Stream(10));
  const auto exp = expected_fine_node(u, 300e-6, table);
  EXPECT_NEAR(sim.fcsr(), exp.fcsr, 0.01) << "u=" << u;
  EXPECT_NEAR(sim.ldr(), exp.ldr, exp.ldr * 0.2 + 1e-4) << "u=" << u;
}

INSTANTIATE_TEST_SUITE_P(UtilGrid, ClosedFormSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                           0.7, 0.8, 0.9, 0.95));

trace::CoarseTrace stepped_trace() {
  // 100 windows at 20%, 100 at 60%, 100 idle.
  trace::CoarseTrace t(2.0);
  for (int i = 0; i < 100; ++i) t.push({0.2, 65536, false});
  for (int i = 0; i < 100; ++i) t.push({0.6, 65536, false});
  for (int i = 0; i < 100; ++i) t.push({0.0, 65536, false});
  return t;
}

TEST(TraceDrivenFineNode, RejectsBadArguments) {
  const auto t = stepped_trace();
  const auto& table = workload::default_burst_table();
  EXPECT_THROW((void)(simulate_fine_node_trace(t, table, -1e-6, 10.0, rng::Stream(1))),
               std::invalid_argument);
  EXPECT_THROW((void)(simulate_fine_node_trace(t, table, 1e-4, 0.0, rng::Stream(1))),
               std::invalid_argument);
}

TEST(TraceDrivenFineNode, AccountingConservesTime) {
  const auto t = stepped_trace();
  const auto r = simulate_fine_node_trace(t, workload::default_burst_table(),
                                          100e-6, 600.0, rng::Stream(2));
  EXPECT_NEAR(r.local_cpu + r.idle_cpu, 600.0, 1e-6);
  EXPECT_LE(r.foreign_cpu, r.idle_cpu);
  EXPECT_GT(r.foreign_cpu, 0.0);
}

TEST(TraceDrivenFineNode, UtilizationTracksTrace) {
  const auto t = stepped_trace();
  const auto r = simulate_fine_node_trace(t, workload::default_burst_table(),
                                          100e-6, 600.0, rng::Stream(3));
  // Mean utilization over the full cycle: (0.2 + 0.6 + 0.0) / 3.
  EXPECT_NEAR(r.local_cpu / 600.0, 0.8 / 3.0, 0.03);
}

TEST(TraceDrivenFineNode, MatchesWindowIntegratedRateModel) {
  // The core modeling bridge: the cluster simulator replaces burst-level
  // co-simulation with per-window rates (1-u)*fcsr(u). Both must deliver
  // the same foreign CPU over the same trace.
  const auto t = stepped_trace();
  const auto& table = workload::default_burst_table();
  const double cs = 100e-6;
  const double horizon = 600.0;

  const auto fine =
      simulate_fine_node_trace(t, table, cs, horizon, rng::Stream(4));

  const auto rates = EffectiveRateTable::analytic(table, cs);
  double integrated = 0.0;
  for (double w = 0.0; w < horizon; w += t.period()) {
    integrated += rates.foreign_rate(t.sample_at(w).cpu) * t.period();
  }
  EXPECT_NEAR(fine.foreign_cpu, integrated, integrated * 0.03);
}

TEST(TraceDrivenFineNode, OffsetShiftsPhase) {
  const auto t = stepped_trace();
  const auto& table = workload::default_burst_table();
  // Offset 200 s starts inside the 60% segment: less stolen in 100 s than
  // when starting in the 20% segment.
  const auto from_busy = simulate_fine_node_trace(t, table, 100e-6, 100.0,
                                                  rng::Stream(5), 200.0);
  const auto from_light = simulate_fine_node_trace(t, table, 100e-6, 100.0,
                                                   rng::Stream(5), 0.0);
  EXPECT_LT(from_busy.foreign_cpu, from_light.foreign_cpu);
}

TEST(ExpectedFineNode, LimitBehaviour) {
  const auto& table = workload::default_burst_table();
  // Zero switch cost: perfect stealing, zero delay.
  const auto perfect = expected_fine_node(0.5, 0.0, table);
  EXPECT_DOUBLE_EQ(perfect.fcsr, 1.0);
  EXPECT_DOUBLE_EQ(perfect.ldr, 0.0);
  // Enormous switch cost: nothing stolen.
  const auto awful = expected_fine_node(0.5, 100.0, table);
  EXPECT_LT(awful.fcsr, 0.01);
}

}  // namespace
}  // namespace ll::node
