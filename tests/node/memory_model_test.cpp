#include "node/memory_model.hpp"

#include <gtest/gtest.h>

namespace ll::node {
namespace {

PagePoolConfig small_pool() {
  PagePoolConfig c;
  c.total_pages = 1000;
  c.reserved_pages = 100;
  return c;
}

TEST(PagePool, RejectsBadConfig) {
  PagePoolConfig zero;
  zero.total_pages = 0;
  EXPECT_THROW((void)(PagePool{zero}), std::invalid_argument);
  PagePoolConfig reserve_too_big;
  reserve_too_big.total_pages = 100;
  reserve_too_big.reserved_pages = 100;
  EXPECT_THROW((void)(PagePool{reserve_too_big}), std::invalid_argument);
}

TEST(PagePool, StartsEmpty) {
  PagePool pool(small_pool());
  EXPECT_EQ(pool.local_pages(), 0u);
  EXPECT_EQ(pool.foreign_pages(), 0u);
  EXPECT_EQ(pool.free_pages(), 900u);
}

TEST(PagePool, ForeignGrowsIntoFreePages) {
  PagePool pool(small_pool());
  EXPECT_EQ(pool.request_foreign_pages(500), 500u);
  EXPECT_EQ(pool.free_pages(), 400u);
}

TEST(PagePool, ForeignCappedByFreePool) {
  PagePool pool(small_pool());
  pool.set_local_pages(700);
  EXPECT_EQ(pool.request_foreign_pages(500), 200u);
  EXPECT_EQ(pool.free_pages(), 0u);
}

TEST(PagePool, LocalGrowthReclaimsForeignFirst) {
  PagePool pool(small_pool());
  pool.request_foreign_pages(500);
  // Local wants 700: 400 free absorb part, then 300 reclaimed from foreign.
  const std::uint32_t reclaimed = pool.set_local_pages(700);
  EXPECT_EQ(reclaimed, 300u);
  EXPECT_EQ(pool.foreign_pages(), 200u);
  EXPECT_EQ(pool.local_pages(), 700u);
  EXPECT_EQ(pool.free_pages(), 0u);
}

TEST(PagePool, LocalNeverPagedForForeign) {
  PagePool pool(small_pool());
  pool.set_local_pages(850);
  // Foreign can take at most the 50 remaining non-reserved pages.
  EXPECT_EQ(pool.request_foreign_pages(10000), 50u);
  EXPECT_EQ(pool.local_pages(), 850u);
}

TEST(PagePool, LocalShrinkReleasesToFreeList) {
  PagePool pool(small_pool());
  pool.set_local_pages(800);
  pool.set_local_pages(300);
  EXPECT_EQ(pool.free_pages(), 600u);
  // Foreign can now claim the released pages.
  EXPECT_EQ(pool.request_foreign_pages(600), 600u);
}

TEST(PagePool, LocalDemandClampedToCapacity) {
  PagePool pool(small_pool());
  pool.set_local_pages(5000);
  EXPECT_EQ(pool.local_pages(), 900u);  // total minus reserve
  EXPECT_EQ(pool.free_pages(), 0u);
}

TEST(PagePool, ForeignShrinkOnSmallerTarget) {
  PagePool pool(small_pool());
  pool.request_foreign_pages(500);
  EXPECT_EQ(pool.request_foreign_pages(100), 100u);
  EXPECT_EQ(pool.free_pages(), 800u);
}

TEST(PagePool, EvictForeignReleasesEverything) {
  PagePool pool(small_pool());
  pool.request_foreign_pages(500);
  pool.evict_foreign();
  EXPECT_EQ(pool.foreign_pages(), 0u);
  EXPECT_EQ(pool.free_pages(), 900u);
}

TEST(PagePool, ConservationInvariant) {
  PagePool pool(small_pool());
  for (std::uint32_t local : {100u, 600u, 850u, 200u, 0u}) {
    pool.set_local_pages(local);
    pool.request_foreign_pages(400);
    EXPECT_LE(pool.local_pages() + pool.foreign_pages() + 100u,
              pool.total_pages());
  }
}

TEST(PagePool, ReclaimWithNoForeignIsZero) {
  PagePool pool(small_pool());
  EXPECT_EQ(pool.set_local_pages(500), 0u);
}

TEST(PagePool, KbToPagesRoundsUp) {
  EXPECT_EQ(PagePool::kb_to_pages(0), 0u);
  EXPECT_EQ(PagePool::kb_to_pages(4), 1u);
  EXPECT_EQ(PagePool::kb_to_pages(5), 2u);
  EXPECT_EQ(PagePool::kb_to_pages(8192), 2048u);
  EXPECT_THROW((void)(PagePool::kb_to_pages(8, 0)), std::invalid_argument);
}

TEST(ProgressFactor, FullyResidentIsOne) {
  EXPECT_DOUBLE_EQ(memory_progress_factor(2048, 2048), 1.0);
  EXPECT_DOUBLE_EQ(memory_progress_factor(3000, 2048), 1.0);
  EXPECT_DOUBLE_EQ(memory_progress_factor(0, 0), 1.0);
}

TEST(ProgressFactor, DegradesLinearly) {
  EXPECT_DOUBLE_EQ(memory_progress_factor(1024, 2048), 0.5);
  EXPECT_DOUBLE_EQ(memory_progress_factor(512, 2048), 0.25);
}

TEST(ProgressFactor, FloorPreventsTotalStall) {
  EXPECT_DOUBLE_EQ(memory_progress_factor(0, 2048), 0.05);
  EXPECT_DOUBLE_EQ(memory_progress_factor(0, 2048, 0.10), 0.10);
}

}  // namespace
}  // namespace ll::node
