#include <gtest/gtest.h>

#include <cmath>

#include "rng/distributions.hpp"
#include "stats/summary.hpp"

namespace ll::rng {
namespace {

TEST(FitHyperExp2, RecoversTargetMoments) {
  const double mean = 0.05;
  const double variance = 0.005;  // cv2 = 2
  const HyperExp2 h = fit_hyperexp2(mean, variance);
  EXPECT_NEAR(h.mean(), mean, 1e-12);
  EXPECT_NEAR(h.variance(), variance, 1e-12);
}

// Property sweep: the balanced-means fit must reproduce (mean, cv2) across
// the whole range the burst table uses.
class FitSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FitSweep, MomentsRoundTrip) {
  const auto [mean, cv2] = GetParam();
  const double variance = cv2 * mean * mean;
  const HyperExp2 h = fit_hyperexp2(mean, variance);
  EXPECT_NEAR(h.mean(), mean, mean * 1e-9);
  if (cv2 >= 1.0) {
    EXPECT_NEAR(h.variance(), variance, variance * 1e-9);
  } else {
    // Sub-exponential variability degrades to exponential: variance = mean^2.
    EXPECT_NEAR(h.variance(), mean * mean, mean * mean * 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MeanAndCv2Grid, FitSweep,
    ::testing::Combine(::testing::Values(1e-4, 1e-3, 0.01, 0.1, 1.0, 10.0),
                       ::testing::Values(0.5, 1.0, 1.5, 2.0, 4.0, 10.0, 50.0)));

TEST(FitHyperExp2, BalancedMeansProperty) {
  // Each branch contributes exactly half the mean: p/r1 == (1-p)/r2.
  const HyperExp2 h = fit_hyperexp2(2.0, 12.0);
  EXPECT_NEAR(h.p() / h.rate1(), (1.0 - h.p()) / h.rate2(), 1e-12);
}

TEST(FitHyperExp2, Cv2BelowOneDegradesToExponential) {
  const HyperExp2 h = fit_hyperexp2(1.0, 0.25);
  EXPECT_DOUBLE_EQ(h.p(), 1.0);
  EXPECT_DOUBLE_EQ(h.rate1(), h.rate2());
  EXPECT_NEAR(h.cv2(), 1.0, 1e-12);
}

TEST(FitHyperExp2, ZeroVarianceDegradesToExponential) {
  const HyperExp2 h = fit_hyperexp2(0.5, 0.0);
  EXPECT_NEAR(h.mean(), 0.5, 1e-12);
  EXPECT_NEAR(h.cv2(), 1.0, 1e-12);
}

TEST(FitHyperExp2, RejectsBadInputs) {
  EXPECT_THROW((void)(fit_hyperexp2(0.0, 1.0)), std::invalid_argument);
  EXPECT_THROW((void)(fit_hyperexp2(-1.0, 1.0)), std::invalid_argument);
  EXPECT_THROW((void)(fit_hyperexp2(1.0, -0.5)), std::invalid_argument);
}

TEST(FitHyperExp2, SampledMomentsMatchFit) {
  // End-to-end: fit -> sample -> re-measure, as the Figure 2 pipeline does.
  const double mean = 0.02;
  const double variance = 3.0 * mean * mean;
  const HyperExp2 h = fit_hyperexp2(mean, variance);
  Stream s(17);
  stats::Summary sum;
  for (int i = 0; i < 400000; ++i) sum.add(h.sample(s));
  EXPECT_NEAR(sum.mean(), mean, mean * 0.02);
  EXPECT_NEAR(sum.variance(), variance, variance * 0.06);
}

TEST(FitHyperExp2, RefittingFromFittedMomentsIsIdempotent) {
  // Parameter-level round-trip: feeding a fit's own (mean, variance) back
  // through the method of moments must reproduce the same distribution.
  for (const double cv2 : {1.0, 2.0, 8.0, 40.0}) {
    const double mean = 0.03;
    const HyperExp2 first = fit_hyperexp2(mean, cv2 * mean * mean);
    const HyperExp2 second = fit_hyperexp2(first.mean(), first.variance());
    EXPECT_NEAR(first.p(), second.p(), 1e-9);
    EXPECT_NEAR(first.rate1(), second.rate1(), first.rate1() * 1e-9);
    EXPECT_NEAR(first.rate2(), second.rate2(), first.rate2() * 1e-9);
  }
}

TEST(FitHyperExp2, ExtremeCv2StillValid) {
  const HyperExp2 h = fit_hyperexp2(1.0, 1000.0);
  EXPECT_GT(h.p(), 0.99);
  EXPECT_LT(h.p(), 1.0);
  EXPECT_NEAR(h.mean(), 1.0, 1e-9);
  EXPECT_NEAR(h.variance(), 1000.0, 1e-6);
}

}  // namespace
}  // namespace ll::rng
