/// Sub-stream independence properties of the splittable RNG. The whole
/// verification story (scenarios.cpp, llverify --all) leans on forking being
/// a pure function of (parent seed, label, index): adding, removing, or
/// reordering forks must never perturb the draws of existing consumers.

#include <gtest/gtest.h>

#include <vector>

#include "rng/rng.hpp"

namespace ll::rng {
namespace {

std::vector<std::uint64_t> draws(Stream s, int n = 8) {
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(s.engine()());
  return out;
}

TEST(StreamIndependence, ForkIsPureFunctionOfParent) {
  Stream master(123);
  const Stream a = master.fork("child", 4);
  master.uniform01();  // consuming parent entropy must not matter...
  const Stream b = master.fork("child", 4);
  EXPECT_EQ(a.seed(), b.seed());
  EXPECT_EQ(draws(a), draws(b));
}

TEST(StreamIndependence, DecoyForksDoNotPerturbSiblings) {
  // The exact perturbation llverify applies: interleave decoy forks around
  // the real derivation and require identical streams.
  Stream plain(77);
  const Stream direct = plain.fork("cluster", 2);

  Stream perturbed(77);
  (void)perturbed.fork("decoy-before");
  (void)perturbed.fork("cluster", 999);
  const Stream indirect = perturbed.fork("cluster", 2);
  (void)perturbed.fork("decoy-after", 3);

  EXPECT_EQ(direct.seed(), indirect.seed());
  EXPECT_EQ(draws(direct), draws(indirect));
}

TEST(StreamIndependence, ForkOrderIrrelevantAcrossLabels) {
  Stream a(5);
  const Stream a_node = a.fork("node", 1);
  const Stream a_bursts = a.fork("bursts");

  Stream b(5);
  const Stream b_bursts = b.fork("bursts");  // reversed derivation order
  const Stream b_node = b.fork("node", 1);

  EXPECT_EQ(draws(a_node), draws(b_node));
  EXPECT_EQ(draws(a_bursts), draws(b_bursts));
}

TEST(StreamIndependence, DistinctLabelsAndIndicesDiffer) {
  Stream master(9);
  EXPECT_NE(master.fork("a").seed(), master.fork("b").seed());
  EXPECT_NE(master.fork("a", 0).seed(), master.fork("a", 1).seed());
  EXPECT_NE(draws(master.fork("a")), draws(master.fork("b")));
}

TEST(StreamIndependence, NestedForksComposeDeterministically) {
  Stream master(31);
  const Stream deep_a = master.fork("cluster").fork("node", 3).fork("bursts");
  const Stream deep_b = master.fork("cluster").fork("node", 3).fork("bursts");
  EXPECT_EQ(draws(deep_a), draws(deep_b));
  // Path matters: node 3's bursts differ from node 4's.
  const Stream other = master.fork("cluster").fork("node", 4).fork("bursts");
  EXPECT_NE(draws(deep_a), draws(other));
}

TEST(StreamIndependence, DrawingFromChildLeavesSiblingUntouched) {
  Stream master(55);
  Stream noisy = master.fork("noisy");
  const Stream quiet_before = master.fork("quiet");
  for (int i = 0; i < 1000; ++i) noisy.uniform01();
  const Stream quiet_after = master.fork("quiet");
  EXPECT_EQ(draws(quiet_before), draws(quiet_after));
}

}  // namespace
}  // namespace ll::rng
