#include "rng/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ll::rng {
namespace {

TEST(Engine, DeterministicForSeed) {
  Engine a(123);
  Engine b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Engine, DifferentSeedsDiffer) {
  Engine a(1);
  Engine b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Engine, ZeroSeedWorks) {
  Engine e(0);
  // SplitMix expansion guarantees a non-degenerate state even for seed 0.
  std::set<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) values.insert(e());
  EXPECT_GT(values.size(), 30u);
}

TEST(Engine, Uniform01InRange) {
  Engine e(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = e.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Engine, Uniform01MeanNearHalf) {
  Engine e(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += e.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SplitMix, KnownSequenceIsStable) {
  // Pin the generator's output so accidental algorithm changes (which would
  // silently change every experiment) fail loudly.
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_EQ(first, 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(second, 0x6E789E6AA1B965F4ULL);
}

TEST(HashLabel, DistinctLabelsDistinctHashes) {
  EXPECT_NE(hash_label("node"), hash_label("bursts"));
  EXPECT_NE(hash_label("a"), hash_label("b"));
  EXPECT_NE(hash_label(""), hash_label("a"));
}

TEST(HashLabel, Deterministic) {
  EXPECT_EQ(hash_label("cluster"), hash_label("cluster"));
}

TEST(Stream, ForkIsDeterministic) {
  Stream parent(42);
  Stream a = parent.fork("node", 3);
  Stream b = parent.fork("node", 3);
  EXPECT_EQ(a.seed(), b.seed());
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(Stream, ForkDoesNotConsumeParentEntropy) {
  Stream a(42);
  Stream b(42);
  (void)a.fork("x", 0);
  (void)a.fork("y", 1);
  // Parent draws are unaffected by forking.
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Stream, DifferentLabelsIndependent) {
  Stream parent(42);
  Stream a = parent.fork("alpha");
  Stream b = parent.fork("beta");
  EXPECT_NE(a.seed(), b.seed());
}

TEST(Stream, DifferentIndicesIndependent) {
  Stream parent(42);
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) {
    seeds.insert(parent.fork("node", i).seed());
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(Stream, NestedForksIndependent) {
  Stream parent(42);
  const auto s1 = parent.fork("a", 0).fork("b", 1).seed();
  const auto s2 = parent.fork("a", 1).fork("b", 0).seed();
  EXPECT_NE(s1, s2);
}

TEST(Stream, UniformRange) {
  Stream s(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = s.uniform(3.0, 7.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(Stream, UniformIndexCoversRange) {
  Stream s(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(s.uniform_index(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(Stream, UniformIndexZeroThrows) {
  Stream s(5);
  EXPECT_THROW((void)(s.uniform_index(0)), std::invalid_argument);
}

TEST(Stream, UniformIndexOneAlwaysZero) {
  Stream s(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s.uniform_index(1), 0u);
}

TEST(Stream, UniformIndexApproximatelyUniform) {
  Stream s(99);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[s.uniform_index(4)];
  for (int c : counts) EXPECT_NEAR(c, n / 4, n / 40);
}

}  // namespace
}  // namespace ll::rng
