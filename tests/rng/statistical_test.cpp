/// Statistical quality tests for the random substrate. These are not full
/// TestU01 batteries, but they catch the failure modes that would corrupt
/// experiments: biased uniforms, correlated forks, and broken tie-breaking
/// between streams derived from consecutive indices.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "rng/rng.hpp"
#include "stats/summary.hpp"

namespace ll::rng {
namespace {

/// Chi-square statistic for uniform bin occupancy.
double chi_square_uniform(const std::vector<int>& counts, int total) {
  const double expected =
      static_cast<double>(total) / static_cast<double>(counts.size());
  double chi = 0.0;
  for (int c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi += d * d / expected;
  }
  return chi;
}

TEST(RngStatistics, Uniform01ChiSquare) {
  Engine e(12345);
  const int bins = 64;
  const int n = 640000;
  std::vector<int> counts(bins, 0);
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(e.uniform01() * bins)];
  }
  // 63 degrees of freedom; 99.9th percentile ~ 103. Generous bound.
  EXPECT_LT(chi_square_uniform(counts, n), 110.0);
}

TEST(RngStatistics, BitBalance) {
  Engine e(777);
  std::array<int, 64> ones{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    std::uint64_t x = e();
    for (int b = 0; b < 64; ++b) {
      ones[static_cast<std::size_t>(b)] += static_cast<int>((x >> b) & 1);
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(ones[static_cast<std::size_t>(b)], n / 2, n / 2 * 0.02)
        << "bit " << b;
  }
}

TEST(RngStatistics, LagOneAutocorrelationSmall) {
  Engine e(31415);
  const int n = 200000;
  double prev = e.uniform01();
  stats::Summary xs;
  double cross = 0.0;
  std::vector<double> seq;
  seq.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double x = e.uniform01();
    seq.push_back(x);
    xs.add(x);
  }
  (void)prev;
  const double mean = xs.mean();
  double var = 0.0;
  for (int i = 0; i + 1 < n; ++i) {
    cross += (seq[i] - mean) * (seq[i + 1] - mean);
  }
  for (double x : seq) var += (x - mean) * (x - mean);
  EXPECT_LT(std::abs(cross / var), 0.01);
}

TEST(RngStatistics, ForkedStreamsUncorrelated) {
  // Streams forked with consecutive indices must not track each other.
  Stream parent(2718);
  Stream a = parent.fork("node", 0);
  Stream b = parent.fork("node", 1);
  const int n = 100000;
  double cross = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (int i = 0; i < n; ++i) {
    const double xa = a.uniform01() - 0.5;
    const double xb = b.uniform01() - 0.5;
    cross += xa * xb;
    var_a += xa * xa;
    var_b += xb * xb;
  }
  const double corr = cross / std::sqrt(var_a * var_b);
  EXPECT_LT(std::abs(corr), 0.01);
}

TEST(RngStatistics, SiblingLabelsUncorrelated) {
  Stream parent(999);
  Stream a = parent.fork("bursts");
  Stream b = parent.fork("burstt");  // adjacent label
  const int n = 100000;
  double cross = 0.0;
  for (int i = 0; i < n; ++i) {
    cross += (a.uniform01() - 0.5) * (b.uniform01() - 0.5);
  }
  // Normalized by n * var(U-0.5) = n / 12.
  EXPECT_LT(std::abs(cross / (n / 12.0)), 0.02);
}

TEST(RngStatistics, SeedAvalanche) {
  // Adjacent master seeds must produce unrelated first draws.
  std::vector<double> firsts;
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    firsts.push_back(Stream(seed).uniform01());
  }
  stats::Summary s;
  for (double x : firsts) s.add(x);
  EXPECT_NEAR(s.mean(), 0.5, 0.04);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.0 / 12.0), 0.03);
}

TEST(RngStatistics, UniformIndexChiSquare) {
  Stream s(555);
  const std::uint64_t k = 7;  // non-power-of-two to exercise rejection
  const int n = 70000;
  std::vector<int> counts(k, 0);
  for (int i = 0; i < n; ++i) ++counts[s.uniform_index(k)];
  // 6 degrees of freedom; 99.9th percentile ~ 22.5.
  EXPECT_LT(chi_square_uniform(counts, n), 25.0);
}

}  // namespace
}  // namespace ll::rng
