#include "rng/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/cdf.hpp"
#include "stats/summary.hpp"

namespace ll::rng {
namespace {

std::vector<double> draw(const auto& dist, Stream& s, int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(dist.sample(s));
  return out;
}

TEST(Exponential, RejectsBadRate) {
  EXPECT_THROW((void)(Exponential(0.0)), std::invalid_argument);
  EXPECT_THROW((void)(Exponential(-1.0)), std::invalid_argument);
}

TEST(Exponential, MomentFormulas) {
  Exponential e(4.0);
  EXPECT_DOUBLE_EQ(e.mean(), 0.25);
  EXPECT_DOUBLE_EQ(e.variance(), 0.0625);
}

TEST(Exponential, SampleMeanMatches) {
  Exponential e(2.0);
  Stream s(1);
  stats::Summary sum;
  for (double x : draw(e, s, 200000)) sum.add(x);
  EXPECT_NEAR(sum.mean(), 0.5, 0.01);
  EXPECT_NEAR(sum.variance(), 0.25, 0.02);
}

TEST(Exponential, SamplesNonNegative) {
  Exponential e(1.0);
  Stream s(2);
  for (double x : draw(e, s, 10000)) EXPECT_GE(x, 0.0);
}

TEST(Exponential, CdfMatchesClosedForm) {
  Exponential e(3.0);
  EXPECT_DOUBLE_EQ(e.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(-1.0), 0.0);
  EXPECT_NEAR(e.cdf(1.0 / 3.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(Exponential, KsAgainstOwnCdf) {
  Exponential e(1.5);
  Stream s(3);
  stats::EmpiricalCdf ecdf(draw(e, s, 50000));
  const double d = ecdf.ks_distance([&e](double x) { return e.cdf(x); });
  // KS critical value at alpha=0.01 for n=50000 is ~0.0073; allow slack.
  EXPECT_LT(d, 0.012);
}

TEST(HyperExp2, RejectsBadParameters) {
  EXPECT_THROW((void)(HyperExp2(-0.1, 1.0, 1.0)), std::invalid_argument);
  EXPECT_THROW((void)(HyperExp2(1.1, 1.0, 1.0)), std::invalid_argument);
  EXPECT_THROW((void)(HyperExp2(0.5, 0.0, 1.0)), std::invalid_argument);
  EXPECT_THROW((void)(HyperExp2(0.5, 1.0, -2.0)), std::invalid_argument);
}

TEST(HyperExp2, MomentFormulas) {
  HyperExp2 h(0.4, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(h.mean(), 0.4 / 2.0 + 0.6 / 0.5);
  // E[X^2] = 2(p/r1^2 + (1-p)/r2^2)
  const double m2 = 2.0 * (0.4 / 4.0 + 0.6 / 0.25);
  EXPECT_DOUBLE_EQ(h.second_moment(), m2);
  EXPECT_NEAR(h.variance(), m2 - h.mean() * h.mean(), 1e-12);
}

TEST(HyperExp2, DegeneratesToExponential) {
  HyperExp2 h(1.0, 2.0, 5.0);  // second branch unreachable
  Exponential e(2.0);
  EXPECT_DOUBLE_EQ(h.mean(), e.mean());
  EXPECT_NEAR(h.cv2(), 1.0, 1e-12);
}

TEST(HyperExp2, Cv2AtLeastOne) {
  // Any proper H2 has cv^2 >= 1.
  HyperExp2 h(0.3, 5.0, 0.7);
  EXPECT_GE(h.cv2(), 1.0);
}

TEST(HyperExp2, SampleMomentsMatch) {
  HyperExp2 h(0.7, 10.0, 1.0);
  Stream s(4);
  stats::Summary sum;
  for (double x : draw(h, s, 300000)) sum.add(x);
  EXPECT_NEAR(sum.mean(), h.mean(), h.mean() * 0.02);
  EXPECT_NEAR(sum.variance(), h.variance(), h.variance() * 0.05);
}

TEST(HyperExp2, KsAgainstOwnCdf) {
  HyperExp2 h(0.6, 4.0, 0.8);
  Stream s(5);
  stats::EmpiricalCdf ecdf(draw(h, s, 50000));
  const double d = ecdf.ks_distance([&h](double x) { return h.cdf(x); });
  EXPECT_LT(d, 0.012);
}

TEST(HyperExp2, MeanExcessAtZeroIsMean) {
  HyperExp2 h(0.6, 4.0, 0.8);
  EXPECT_NEAR(h.mean_excess(0.0), h.mean(), 1e-12);
  EXPECT_NEAR(h.mean_excess(-1.0), h.mean(), 1e-12);
}

TEST(HyperExp2, MeanExcessDecreases) {
  HyperExp2 h(0.6, 4.0, 0.8);
  double prev = h.mean_excess(0.0);
  for (double c : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    const double cur = h.mean_excess(c);
    EXPECT_LT(cur, prev);
    EXPECT_GT(cur, 0.0);
    prev = cur;
  }
}

TEST(HyperExp2, MeanExcessMatchesMonteCarlo) {
  HyperExp2 h(0.7, 8.0, 1.2);
  Stream s(6);
  const double c = 0.4;
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += std::max(0.0, h.sample(s) - c);
  EXPECT_NEAR(acc / n, h.mean_excess(c), 0.01 * h.mean());
}

TEST(HyperExp2, MeanResidualExceedsMeanForBursty) {
  // Inspection paradox: residual life of a high-cv2 process exceeds half the
  // mean (and exceeds the full mean when cv2 > 1).
  HyperExp2 h(0.9, 20.0, 0.5);
  EXPECT_GT(h.cv2(), 1.0);
  EXPECT_GT(h.mean_residual(), h.mean());
}

TEST(HyperExp2, CdfMonotoneAndBounded) {
  HyperExp2 h(0.5, 2.0, 0.2);
  double prev = 0.0;
  for (double x = 0.0; x < 20.0; x += 0.25) {
    const double f = h.cdf(x);
    EXPECT_GE(f, prev);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_GT(prev, 0.97);
}

}  // namespace
}  // namespace ll::rng
