#include "util/table.hpp"

#include <gtest/gtest.h>

namespace ll::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"policy", "value"});
  t.add_row({"LL", "1044"});
  t.add_row({"IE", "1531"});
  const std::string out = t.render();
  EXPECT_NE(out.find("policy"), std::string::npos);
  EXPECT_NE(out.find("LL"), std::string::npos);
  EXPECT_NE(out.find("1531"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t({"a", "b"});
  t.add_row({"xxxxx", "1"});
  t.add_row({"y", "22"});
  const std::string out = t.render();
  // Every rendered line has the same length when columns are padded.
  std::size_t first_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t next = out.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    EXPECT_EQ(next - pos, first_len) << "line starting at " << pos;
    pos = next + 1;
  }
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.render());
}

TEST(Table, OverlongRowThrows) {
  Table t({"a"});
  EXPECT_THROW((void)(t.add_row({"1", "2"})), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW((void)(Table({})), std::invalid_argument);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_separator();
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, SeparatorEmitsRule) {
  Table t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Header separator plus the explicit one.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = out.find("|-", pos)) != std::string::npos) {
    ++count;
    pos += 2;
  }
  EXPECT_EQ(count, 2u);
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.3f", 1.0 / 3.0), "0.333");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Format, Percent) {
  EXPECT_EQ(percent(0.005, 1), "0.5%");
  EXPECT_EQ(percent(0.5, 0), "50%");
}

}  // namespace
}  // namespace ll::util
