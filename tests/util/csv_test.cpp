#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ll::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique file per test case: ctest runs cases as parallel processes.
    path_ = ::testing::TempDir() + "/ll_csv_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CsvTest, WritesRows) {
  {
    CsvWriter w(path_);
    ASSERT_TRUE(w.enabled());
    w.row({"a", "b"});
    w.row({"1", "2"});
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter w(path_);
    w.row({"has,comma", "has\"quote", "has\nnewline", "plain"});
  }
  EXPECT_EQ(read_file(path_),
            "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST_F(CsvTest, VectorOverload) {
  {
    CsvWriter w(path_);
    w.row(std::vector<std::string>{"x", "y"});
  }
  EXPECT_EQ(read_file(path_), "x,y\n");
}

TEST_F(CsvTest, TruncatesExistingFile) {
  {
    CsvWriter w(path_);
    w.row({"old"});
  }
  {
    CsvWriter w(path_);
    w.row({"new"});
  }
  EXPECT_EQ(read_file(path_), "new\n");
}

TEST(CsvDisabled, DisabledWriterIsNoOp) {
  CsvWriter w("");
  EXPECT_FALSE(w.enabled());
  EXPECT_NO_THROW(w.row({"ignored"}));
}

TEST(CsvDisabled, UnwritablePathThrows) {
  EXPECT_THROW((void)(CsvWriter("/nonexistent-dir-xyz/file.csv")), std::runtime_error);
}

TEST(CsvEscape, PassesPlainThrough) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(CsvEscape, DoublesQuotes) {
  EXPECT_EQ(CsvWriter::escape("a\"b"), "\"a\"\"b\"");
}

TEST(CsvEscape, EmptyCell) { EXPECT_EQ(CsvWriter::escape(""), ""); }

}  // namespace
}  // namespace ll::util
