#include "util/stable_vector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace ll::util {
namespace {

TEST(StableVector, StartsEmpty) {
  StableVector<int> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.begin(), v.end());
}

TEST(StableVector, PushBackAndIndexAcrossChunks) {
  StableVector<int, 4> v;  // tiny chunks so growth crosses many boundaries
  for (int i = 0; i < 100; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(v[static_cast<std::size_t>(i)], i * 3);
  }
  EXPECT_EQ(v.front(), 0);
  EXPECT_EQ(v.back(), 99 * 3);
}

TEST(StableVector, ReferencesSurviveGrowth) {
  // The reason this container exists: a reference taken before thousands of
  // push_backs must still point at the same live element afterwards.
  StableVector<std::string, 8> v;
  std::string& first = v.emplace_back("first");
  std::string* addr = &first;
  for (int i = 0; i < 10000; ++i) v.push_back("filler-" + std::to_string(i));
  EXPECT_EQ(addr, &v.front());
  EXPECT_EQ(first, "first");
  first = "renamed";
  EXPECT_EQ(v[0], "renamed");
}

TEST(StableVector, EmplaceBackReturnsStableSlot) {
  StableVector<std::pair<int, int>, 4> v;
  auto& slot = v.emplace_back(std::make_pair(1, 2));
  EXPECT_EQ(slot.first, 1);
  for (int i = 0; i < 64; ++i) v.emplace_back(std::make_pair(i, i));
  slot.second = 99;
  EXPECT_EQ(v[0].second, 99);
}

TEST(StableVector, ClearKeepsChunksAndRefills) {
  StableVector<int, 4> v;
  for (int i = 0; i < 40; ++i) v.push_back(i);
  int* slot0 = &v[0];
  v.clear();
  EXPECT_TRUE(v.empty());
  // Refilling reuses the retained chunks: slot 0 is the same storage.
  v.push_back(123);
  EXPECT_EQ(&v[0], slot0);
  EXPECT_EQ(v[0], 123);
}

TEST(StableVector, RangeForAndIteratorConversion) {
  StableVector<int, 8> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  int expected = 0;
  for (int x : v) EXPECT_EQ(x, expected++);
  EXPECT_EQ(expected, 20);

  // iterator -> const_iterator must convert (the pattern const consumers
  // like write_job_log rely on).
  StableVector<int, 8>::const_iterator cit = v.begin();
  EXPECT_EQ(*cit, 0);
  const auto& cv = v;
  EXPECT_EQ(std::count_if(cv.begin(), cv.end(), [](int x) { return x >= 10; }),
            10);
}

TEST(StableVector, CopyPreservesValuesIndependently) {
  StableVector<int, 4> a;
  for (int i = 0; i < 10; ++i) a.push_back(i);
  StableVector<int, 4> b(a);
  ASSERT_EQ(b.size(), a.size());
  b[3] = -1;
  EXPECT_EQ(a[3], 3);
  EXPECT_EQ(b[3], -1);

  StableVector<int, 4> c;
  c.push_back(42);
  c = a;
  ASSERT_EQ(c.size(), 10u);
  EXPECT_EQ(c[9], 9);
}

TEST(StableVector, MoveTransfersStorage) {
  StableVector<int, 4> a;
  for (int i = 0; i < 10; ++i) a.push_back(i);
  int* slot = &a[7];
  StableVector<int, 4> b(std::move(a));
  EXPECT_EQ(&b[7], slot);  // chunks moved, not copied
  EXPECT_EQ(b[7], 7);
}

TEST(StableVector, MutationThroughIterator) {
  StableVector<int, 4> v;
  for (int i = 0; i < 12; ++i) v.push_back(0);
  for (auto it = v.begin(); it != v.end(); ++it) *it = 5;
  for (int x : v) EXPECT_EQ(x, 5);
}

}  // namespace
}  // namespace ll::util
