#include "util/ascii_chart.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace ll::util {
namespace {

ChartSeries line(std::string name, std::vector<double> xs,
                 std::vector<double> ys) {
  return ChartSeries{std::move(name), std::move(xs), std::move(ys)};
}

TEST(AsciiChart, RejectsBadInput) {
  EXPECT_THROW((void)render_chart({}), std::invalid_argument);
  EXPECT_THROW((void)render_chart({line("a", {}, {})}), std::invalid_argument);
  EXPECT_THROW((void)render_chart({line("a", {1, 2}, {1})}),
               std::invalid_argument);
  ChartOptions tiny;
  tiny.width = 2;
  EXPECT_THROW((void)render_chart({line("a", {1}, {1})}, tiny),
               std::invalid_argument);
}

TEST(AsciiChart, ContainsLegendAndAxisLabels) {
  ChartOptions opts;
  opts.x_label = "idle nodes";
  opts.y_label = "slowdown";
  const std::string out =
      render_chart({line("reconfig", {0, 1, 2}, {1, 2, 4}),
                    line("linger", {0, 1, 2}, {1, 1.5, 2})},
                   opts);
  EXPECT_NE(out.find("* reconfig"), std::string::npos);
  EXPECT_NE(out.find("+ linger"), std::string::npos);
  EXPECT_NE(out.find("idle nodes"), std::string::npos);
  EXPECT_NE(out.find("slowdown"), std::string::npos);
}

TEST(AsciiChart, YRangeLabelsReflectData) {
  const std::string out = render_chart({line("a", {0, 10}, {2.0, 8.0})});
  EXPECT_NE(out.find("8"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);  // x max
}

TEST(AsciiChart, RisingSeriesPutsLastPointAboveFirst) {
  ChartOptions opts;
  opts.width = 32;
  opts.height = 8;
  const std::string out = render_chart({line("a", {0, 1}, {0.0, 1.0})}, opts);
  // Split into rows and find the first and last plotted columns.
  std::vector<std::string> rows;
  std::stringstream ss(out);
  std::string row;
  while (std::getline(ss, row)) rows.push_back(row);
  int first_row = -1;
  int last_row = -1;
  for (int r = 0; r < static_cast<int>(rows.size()); ++r) {
    const auto star = rows[static_cast<std::size_t>(r)].find('*');
    if (star == std::string::npos) continue;
    if (last_row < 0) last_row = r;  // topmost star = highest y = last point
    first_row = r;                   // bottommost star = lowest y
  }
  ASSERT_GE(first_row, 0);
  EXPECT_LT(last_row, first_row);  // higher value renders on an earlier row
}

TEST(AsciiChart, ConnectsPointsAcrossColumns) {
  ChartOptions opts;
  opts.width = 40;
  opts.height = 10;
  // Two points far apart in x: interpolation must fill the columns between.
  const std::string out = render_chart({line("a", {0, 100}, {5.0, 5.0})}, opts);
  std::stringstream ss(out);
  std::string row;
  std::size_t max_stars = 0;
  while (std::getline(ss, row)) {
    max_stars = std::max(
        max_stars, static_cast<std::size_t>(
                       std::count(row.begin(), row.end(), '*')));
  }
  EXPECT_EQ(max_stars, opts.width);  // a flat line spans the full canvas
}

TEST(AsciiChart, FixedYRangeClamps) {
  ChartOptions opts;
  opts.y_min = 0.0;
  opts.y_max = 1.0;
  const std::string out = render_chart({line("a", {0, 1}, {-5.0, 5.0})}, opts);
  EXPECT_NE(out.find("1"), std::string::npos);
  EXPECT_NE(out.find("0"), std::string::npos);
}

TEST(AsciiChart, SinglePointRenders) {
  EXPECT_NO_THROW((void)render_chart({line("dot", {3}, {4})}));
}

TEST(AsciiChart, GlyphsCycleAcrossManySeries) {
  std::vector<ChartSeries> many;
  for (int i = 0; i < 8; ++i) {
    many.push_back(line("s" + std::to_string(i), {0, 1},
                        {static_cast<double>(i), static_cast<double>(i)}));
  }
  const std::string out = render_chart(many);
  // 7th series reuses the first glyph ('*').
  EXPECT_NE(out.find("* s0"), std::string::npos);
  EXPECT_NE(out.find("* s6"), std::string::npos);
}

TEST(AsciiChart, NonFinitePointThrowsNamingTheSeries) {
  // A NaN used to poison the min/max range scan: every comparison against
  // NaN is false, so the axis limits came out of uninitialised-looking
  // bounds and the whole chart rendered blank. Now the bad point is
  // rejected up front with the series name in the message.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const auto& bad :
       {line("broken", {0, nan}, {1, 2}), line("broken", {0, 1}, {1, nan}),
        line("broken", {0, inf}, {1, 2}), line("broken", {0, 1}, {1, -inf})}) {
    try {
      (void)render_chart({line("good", {0, 1}, {1, 2}), bad});
      FAIL() << "non-finite point did not throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("broken"), std::string::npos)
          << e.what();
    }
  }
}

TEST(AsciiChart, NanAxisOptionsStillMeanAuto) {
  // ChartOptions uses NaN as the "pick the range from the data" sentinel;
  // the finiteness check applies to data points only.
  ChartOptions opts;  // y_min / y_max default to the NaN sentinel
  EXPECT_NO_THROW((void)render_chart({line("a", {0, 1}, {1, 2})}, opts));
}

}  // namespace
}  // namespace ll::util
