/// \file ring_deque_test.cpp
/// The Chase–Lev deque under util/ring_deque.hpp: single-owner push/pop
/// semantics, capacity/wraparound behavior, and the concurrent claims the
/// TaskRunner rests on — every element is taken exactly once, by exactly
/// one thread, under N thieves racing the owner (the TSan preset runs
/// these same tests to prove the orderings, not just the outcomes).

#include "util/ring_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ll::util {
namespace {

TEST(RingDeque, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(RingDeque<int>(1).capacity(), 2u);
  EXPECT_EQ(RingDeque<int>(2).capacity(), 2u);
  EXPECT_EQ(RingDeque<int>(3).capacity(), 4u);
  EXPECT_EQ(RingDeque<int>(9).capacity(), 16u);
  EXPECT_EQ(RingDeque<int>(64).capacity(), 64u);
}

TEST(RingDeque, OwnerPopIsLifo) {
  RingDeque<int> dq(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(dq.push_bottom(i));
  for (int i = 4; i >= 0; --i) {
    const auto v = dq.pop_bottom();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(dq.pop_bottom().has_value());
}

TEST(RingDeque, StealIsFifo) {
  RingDeque<int> dq(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(dq.push_bottom(i));
  for (int i = 0; i < 5; ++i) {
    const auto v = dq.steal_top();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(dq.steal_top().has_value());
}

TEST(RingDeque, PushFailsWhenFullInsteadOfOverwriting) {
  RingDeque<int> dq(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(dq.push_bottom(i));
  EXPECT_FALSE(dq.push_bottom(99));
  // Draining one end frees a slot again.
  EXPECT_EQ(dq.steal_top().value(), 0);
  EXPECT_TRUE(dq.push_bottom(4));
  EXPECT_FALSE(dq.push_bottom(5));
}

TEST(RingDeque, WraparoundReusesSlotsManyTimesOver) {
  // Push/pop far past capacity: the monotonic cursors must keep indexing
  // the ring correctly after wrapping the physical buffer repeatedly.
  RingDeque<int> dq(4);
  for (int cycle = 0; cycle < 1000; ++cycle) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(dq.push_bottom(cycle * 3 + i));
    }
    EXPECT_EQ(dq.steal_top().value(), cycle * 3);           // oldest
    EXPECT_EQ(dq.pop_bottom().value(), cycle * 3 + 2);      // newest
    EXPECT_EQ(dq.pop_bottom().value(), cycle * 3 + 1);      // remaining
    EXPECT_TRUE(dq.empty_relaxed());
  }
}

TEST(RingDeque, EmptyDequeReturnsNulloptOnBothEnds) {
  RingDeque<int> dq(4);
  EXPECT_FALSE(dq.pop_bottom().has_value());
  EXPECT_FALSE(dq.steal_top().has_value());
  // And again after becoming empty (bottom has moved).
  ASSERT_TRUE(dq.push_bottom(7));
  EXPECT_EQ(dq.pop_bottom().value(), 7);
  EXPECT_FALSE(dq.pop_bottom().has_value());
  EXPECT_FALSE(dq.steal_top().has_value());
}

TEST(RingDeque, ConcurrentThievesTakeEveryElementExactlyOnce) {
  // Owner pre-fills, then N thieves race to drain. Exactly-once: every
  // element seen, none twice.
  constexpr std::size_t kElements = 4096;
  constexpr std::size_t kThieves = 4;
  RingDeque<std::size_t> dq(kElements);
  for (std::size_t i = 0; i < kElements; ++i) {
    ASSERT_TRUE(dq.push_bottom(i));
  }
  std::vector<std::atomic<int>> taken(kElements);
  std::atomic<std::size_t> drained{0};
  std::vector<std::thread> thieves;
  for (std::size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (drained.load(std::memory_order_relaxed) < kElements) {
        if (const auto v = dq.steal_top()) {
          taken[*v].fetch_add(1, std::memory_order_relaxed);
          drained.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : thieves) t.join();
  for (std::size_t i = 0; i < kElements; ++i) {
    EXPECT_EQ(taken[i].load(), 1) << "element " << i;
  }
}

TEST(RingDeque, OwnerAndThievesRaceWithoutLossOrDuplication) {
  // The full protocol under contention: the owner pushes in waves and pops
  // LIFO while thieves steal FIFO, deliberately hammering the one-element
  // boundary case (owner pop vs. thief CAS on the same last slot).
  constexpr std::size_t kElements = 10000;
  constexpr std::size_t kThieves = 3;
  RingDeque<std::size_t> dq(64);  // small ring: constant full/empty churn
  std::vector<std::atomic<int>> taken(kElements);
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (std::size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (const auto v = dq.steal_top()) {
          taken[*v].fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();  // single-core friendliness
        }
      }
      // Final sweep: nothing may be stranded after the owner stops.
      while (const auto v = dq.steal_top()) {
        taken[*v].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::size_t next = 0;
  while (next < kElements) {
    // Push a small wave (whatever fits), then pop about half of it back —
    // keeps the deque hovering near empty where the races live.
    std::size_t pushed = 0;
    while (next < kElements && dq.push_bottom(next)) {
      ++next;
      ++pushed;
    }
    for (std::size_t i = 0; i < pushed / 2 + 1; ++i) {
      if (const auto v = dq.pop_bottom()) {
        taken[*v].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  while (const auto v = dq.pop_bottom()) {
    taken[*v].fetch_add(1, std::memory_order_relaxed);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  for (std::size_t i = 0; i < kElements; ++i) {
    ASSERT_EQ(taken[i].load(), 1) << "element " << i << " lost or duplicated";
  }
}

TEST(RingDeque, SingleElementBoundaryRaceHasExactlyOneWinner) {
  // One element, one owner pop, one thief steal, repeated: exactly one of
  // the two contenders may win each round.
  constexpr int kRounds = 2000;
  RingDeque<int> dq(2);
  std::atomic<int> owner_wins{0};
  std::atomic<int> thief_wins{0};
  std::atomic<int> round_ready{-1};
  std::atomic<int> round_done{-1};

  std::thread thief([&] {
    for (int r = 0; r < kRounds; ++r) {
      while (round_ready.load(std::memory_order_acquire) < r) {
        std::this_thread::yield();
      }
      if (dq.steal_top().has_value()) {
        thief_wins.fetch_add(1, std::memory_order_relaxed);
      }
      round_done.store(r, std::memory_order_release);
    }
  });

  for (int r = 0; r < kRounds; ++r) {
    EXPECT_TRUE(dq.push_bottom(r));
    round_ready.store(r, std::memory_order_release);
    if (dq.pop_bottom().has_value()) {
      owner_wins.fetch_add(1, std::memory_order_relaxed);
    }
    while (round_done.load(std::memory_order_acquire) < r) {
      std::this_thread::yield();
    }
    // The loser may have returned nullopt; the element must be gone either
    // way before the next round starts.
    EXPECT_FALSE(dq.steal_top().has_value());
    EXPECT_TRUE(dq.empty_relaxed());
  }
  thief.join();
  EXPECT_EQ(owner_wins.load() + thief_wins.load(), kRounds);
}

}  // namespace
}  // namespace ll::util
