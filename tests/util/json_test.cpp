#include "util/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace ll::util::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const Value doc = parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_EQ(doc.kind(), Kind::kObject);
  const auto& arr = doc.find("a")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[1].as_number(), 2.0);
  EXPECT_TRUE(arr[2].find("b")->as_bool());
  EXPECT_EQ(doc.find("c")->as_string(), "x");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  const Value doc = parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& obj = doc.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(Json, DecodesEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\tA")").as_string(), "a\"b\\c\nd\tA");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1.2.3",
                          "\"unterminated", "{\"a\":1} trailing", "nan"}) {
    EXPECT_THROW((void)parse(bad), std::runtime_error) << "'" << bad << "'";
  }
}

TEST(Json, EscapeRoundTripsThroughParse) {
  const std::string raw = "quote \" backslash \\ newline \n tab \t";
  const Value v = parse("\"" + escape(raw) + "\"");
  EXPECT_EQ(v.as_string(), raw);
}

TEST(Json, KindNamesAreHumanReadable) {
  EXPECT_EQ(Value::kind_name(Kind::kObject), "object");
  EXPECT_EQ(Value::kind_name(Kind::kNumber), "number");
  EXPECT_EQ(Value::kind_name(Kind::kArray), "array");
  EXPECT_EQ(Value::kind_name(Kind::kString), "string");
}

}  // namespace
}  // namespace ll::util::json
