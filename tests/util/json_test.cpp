#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace ll::util::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const Value doc = parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_EQ(doc.kind(), Kind::kObject);
  const auto& arr = doc.find("a")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[1].as_number(), 2.0);
  EXPECT_TRUE(arr[2].find("b")->as_bool());
  EXPECT_EQ(doc.find("c")->as_string(), "x");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  const Value doc = parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& obj = doc.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(Json, DecodesEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\tA")").as_string(), "a\"b\\c\nd\tA");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1.2.3",
                          "\"unterminated", "{\"a\":1} trailing", "nan"}) {
    EXPECT_THROW((void)parse(bad), std::runtime_error) << "'" << bad << "'";
  }
}

TEST(Json, IntegerLiteralsRoundTripExactly) {
  // 2^53 ± 1: the boundary where a double silently drops the low bit.
  EXPECT_EQ(parse("9007199254740991").as_u64(), 9007199254740991ull);
  EXPECT_EQ(parse("9007199254740993").as_u64(), 9007199254740993ull);
  EXPECT_EQ(parse("18446744073709551615").as_u64(), 18446744073709551615ull);
  EXPECT_EQ(parse("-9007199254740993").as_i64(), -9007199254740993ll);
  EXPECT_EQ(parse("-9223372036854775808").as_i64(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(parse("9007199254740993").is_integer());
  EXPECT_FALSE(parse("1.5").is_integer());
}

TEST(Json, IntegerAccessorsRejectLossyValues) {
  EXPECT_THROW((void)parse("-1").as_u64(), std::runtime_error);
  EXPECT_THROW((void)parse("1.5").as_u64(), std::runtime_error);
  EXPECT_THROW((void)parse("1.5").as_i64(), std::runtime_error);
  EXPECT_THROW((void)parse("\"7\"").as_u64(), std::runtime_error);
  // uint64 max does not fit int64.
  EXPECT_THROW((void)parse("18446744073709551615").as_i64(),
               std::runtime_error);
  // Beyond uint64 range the literal degrades to double; the exact
  // accessor refuses it rather than rounding.
  EXPECT_FALSE(parse("18446744073709551616").is_integer());
  EXPECT_THROW((void)parse("18446744073709551616").as_u64(),
               std::runtime_error);
}

TEST(Json, IntegerAccessorsStillServeDoubles) {
  // Small exactly-integral doubles (exponent form) convert losslessly.
  EXPECT_EQ(parse("1e3").as_u64(), 1000ull);
  EXPECT_EQ(parse("-1e3").as_i64(), -1000ll);
  EXPECT_DOUBLE_EQ(parse("18446744073709551615").as_number(),
                   18446744073709551615.0);
}

TEST(Json, EscapeRoundTripsThroughParse) {
  const std::string raw = "quote \" backslash \\ newline \n tab \t";
  const Value v = parse("\"" + escape(raw) + "\"");
  EXPECT_EQ(v.as_string(), raw);
}

TEST(Json, KindNamesAreHumanReadable) {
  EXPECT_EQ(Value::kind_name(Kind::kObject), "object");
  EXPECT_EQ(Value::kind_name(Kind::kNumber), "number");
  EXPECT_EQ(Value::kind_name(Kind::kArray), "array");
  EXPECT_EQ(Value::kind_name(Kind::kString), "string");
}

}  // namespace
}  // namespace ll::util::json
