#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ll::util {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> out{"prog"};
  out.insert(out.end(), args.begin(), args.end());
  return out;
}

TEST(Flags, DefaultsSurviveEmptyParse) {
  Flags flags("t", "test");
  auto i = flags.add_int("count", 7, "a count");
  auto d = flags.add_double("ratio", 0.5, "a ratio");
  auto b = flags.add_bool("verbose", false, "a switch");
  auto s = flags.add_string("name", "abc", "a name");
  auto argv = argv_of({});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*i, 7);
  EXPECT_DOUBLE_EQ(*d, 0.5);
  EXPECT_FALSE(*b);
  EXPECT_EQ(*s, "abc");
}

TEST(Flags, EqualsSyntax) {
  Flags flags("t", "test");
  auto i = flags.add_int("count", 0, "");
  auto argv = argv_of({"--count=42"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*i, 42);
}

TEST(Flags, SpaceSeparatedValue) {
  Flags flags("t", "test");
  auto d = flags.add_double("ratio", 0.0, "");
  auto argv = argv_of({"--ratio", "2.25"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(*d, 2.25);
}

TEST(Flags, NegativeIntegers) {
  Flags flags("t", "test");
  auto i = flags.add_int("delta", 0, "");
  auto argv = argv_of({"--delta=-13"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*i, -13);
}

TEST(Flags, Uint64RoundTripsLargeValues) {
  Flags flags("t", "test");
  auto u = flags.add_uint64("seed", 0, "");
  auto argv = argv_of({"--seed=18446744073709551615"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*u, 18446744073709551615ull);
}

TEST(Flags, BareBoolSetsTrue) {
  Flags flags("t", "test");
  auto b = flags.add_bool("verbose", false, "");
  auto argv = argv_of({"--verbose"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(*b);
}

TEST(Flags, NoPrefixNegatesBool) {
  Flags flags("t", "test");
  auto b = flags.add_bool("verbose", true, "");
  auto argv = argv_of({"--no-verbose"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(*b);
}

TEST(Flags, BoolAcceptsExplicitValues) {
  Flags flags("t", "test");
  auto b = flags.add_bool("verbose", false, "");
  auto argv = argv_of({"--verbose=yes"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(*b);
}

TEST(Flags, UnknownFlagThrows) {
  Flags flags("t", "test");
  flags.add_int("count", 0, "");
  auto argv = argv_of({"--typo=1"});
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Flags, MalformedIntegerThrows) {
  Flags flags("t", "test");
  flags.add_int("count", 0, "");
  auto argv = argv_of({"--count=12x"});
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Flags, MalformedDoubleThrows) {
  Flags flags("t", "test");
  flags.add_double("ratio", 0.0, "");
  auto argv = argv_of({"--ratio=abc"});
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Flags, DoubleRejectsTrailingGarbage) {
  // "5x" used to parse as 5.0 — strtod stops at the 'x' and the remainder
  // was silently dropped, so a typo like --reps=5x went unnoticed.
  for (const char* bad : {"--ratio=5x", "--ratio=1.5.2", "--ratio=2e"}) {
    Flags f("t", "test");
    f.add_double("ratio", 0.0, "");
    auto argv = argv_of({bad});
    EXPECT_THROW(f.parse(static_cast<int>(argv.size()), argv.data()),
                 std::invalid_argument)
        << bad;
  }
}

TEST(Flags, DoubleRejectsOverflowAndNonFinite) {
  for (const char* bad :
       {"--ratio=1e999", "--ratio=-1e999", "--ratio=nan", "--ratio=inf",
        "--ratio=-inf", "--ratio=NaN", "--ratio=INFINITY"}) {
    Flags f("t", "test");
    f.add_double("ratio", 0.0, "");
    auto argv = argv_of({bad});
    EXPECT_THROW(f.parse(static_cast<int>(argv.size()), argv.data()),
                 std::invalid_argument)
        << bad;
  }
}

TEST(Flags, DoubleRejectsEmptyAndWhitespace) {
  for (const char* bad : {"--ratio=", "--ratio= 5", "--ratio=5 "}) {
    Flags f("t", "test");
    f.add_double("ratio", 0.0, "");
    auto argv = argv_of({bad});
    EXPECT_THROW(f.parse(static_cast<int>(argv.size()), argv.data()),
                 std::invalid_argument)
        << "'" << bad << "'";
  }
}

TEST(Flags, DoubleStillAcceptsScientificAndSubnormal) {
  Flags flags("t", "test");
  auto d = flags.add_double("ratio", 0.0, "");
  auto argv = argv_of({"--ratio=1.5e-3"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(*d, 1.5e-3);
  // Finite underflow (ERANGE but a representable denormal) is a value, not
  // an error.
  Flags tiny("t", "test");
  auto td = tiny.add_double("ratio", 1.0, "");
  auto targv = argv_of({"--ratio=1e-320"});
  tiny.parse(static_cast<int>(targv.size()), targv.data());
  EXPECT_GT(*td, 0.0);
  EXPECT_LT(*td, 1e-300);
}

TEST(Flags, MalformedBoolThrows) {
  Flags flags("t", "test");
  flags.add_bool("verbose", false, "");
  auto argv = argv_of({"--verbose=maybe"});
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Flags, MissingValueThrows) {
  Flags flags("t", "test");
  flags.add_int("count", 0, "");
  auto argv = argv_of({"--count"});
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Flags, PositionalArgumentThrows) {
  Flags flags("t", "test");
  auto argv = argv_of({"stray"});
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Flags, DuplicateRegistrationThrows) {
  Flags flags("t", "test");
  flags.add_int("count", 0, "");
  EXPECT_THROW((void)(flags.add_double("count", 0.0, "")), std::logic_error);
}

TEST(Flags, LastValueWins) {
  Flags flags("t", "test");
  auto i = flags.add_int("count", 0, "");
  auto argv = argv_of({"--count=1", "--count=2"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*i, 2);
}

TEST(Flags, UsageListsFlagsAndDefaults) {
  Flags flags("myprog", "does things");
  flags.add_int("count", 7, "how many");
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("myprog"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("7"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
}

TEST(Flags, StringWithCommasAndSpaces) {
  Flags flags("t", "test");
  auto s = flags.add_string("path", "", "");
  auto argv = argv_of({"--path=/tmp/a b,c.csv"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*s, "/tmp/a b,c.csv");
}

}  // namespace
}  // namespace ll::util
