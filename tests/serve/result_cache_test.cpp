#include "serve/result_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace ll::serve {
namespace {

TEST(ResultCache, SameKeyBuildsOnceAndSharesBytes) {
  ResultCache cache;
  int builds = 0;
  const auto build = [&builds] {
    ++builds;
    return std::string("payload");
  };
  const auto a = cache.get_or_build(1, 2, build);
  const auto b = cache.get_or_build(1, 2, build);
  EXPECT_FALSE(a.hit);
  EXPECT_TRUE(b.hit);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(a.value.get(), b.value.get());  // literally the same bytes
  EXPECT_EQ(*b.value, "payload");
}

TEST(ResultCache, DigestAndSeedBothKeyTheCache) {
  ResultCache cache;
  const auto build = [] { return std::string("x"); };
  (void)cache.get_or_build(1, 1, build);
  EXPECT_FALSE(cache.get_or_build(2, 1, build).hit);
  EXPECT_FALSE(cache.get_or_build(1, 2, build).hit);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ResultCache, ConcurrentSlowBuildRunsOnce) {
  ResultCache cache;
  std::atomic<int> builds{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> threads;
  std::vector<ResultCache::Outcome> got(4);
  for (std::size_t t = 0; t < got.size(); ++t) {
    threads.emplace_back([&, t] {
      got[t] = cache.get_or_build(7, 7, [&] {
        ++builds;
        while (!release.load()) std::this_thread::yield();
        return std::string("slow");
      });
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release = true;
  for (auto& th : threads) th.join();
  EXPECT_EQ(builds.load(), 1);
  int hits = 0;
  for (const auto& o : got) {
    EXPECT_EQ(*o.value, "slow");
    hits += o.hit ? 1 : 0;
  }
  EXPECT_EQ(hits, 3);  // exactly one caller ran the build
}

TEST(ResultCache, FailedBuildPropagatesAndIsNotCached) {
  ResultCache cache;
  EXPECT_THROW((void)cache.get_or_build(
                   3, 3,
                   []() -> std::string { throw std::runtime_error("boom"); }),
               std::runtime_error);
  const auto ok = cache.get_or_build(3, 3, [] { return std::string("ok"); });
  EXPECT_FALSE(ok.hit);
  EXPECT_EQ(*ok.value, "ok");
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  const auto build = [] { return std::string("v"); };
  (void)cache.get_or_build(1, 0, build);
  (void)cache.get_or_build(2, 0, build);
  (void)cache.get_or_build(1, 0, build);  // touch 1 -> 2 is LRU
  (void)cache.get_or_build(3, 0, build);  // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.get_or_build(1, 0, build).hit);
  EXPECT_FALSE(cache.get_or_build(2, 0, build).hit);  // was evicted
}

}  // namespace
}  // namespace ll::serve
