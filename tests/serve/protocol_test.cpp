#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include "util/json.hpp"

namespace ll::serve {
namespace {

namespace json = util::json;

TEST(Protocol, ParsesRunRequestWithParams) {
  const ParsedRequest req = parse_request(
      R"({"id": 9, "op": "run", "params": {"policy": "IE", "nodes": 8,)"
      R"( "seed": 123, "reps": 2}})");
  EXPECT_EQ(req.id, 9u);
  EXPECT_EQ(req.op, Op::kRun);
  EXPECT_EQ(req.scenario.policy, core::PolicyKind::ImmediateEviction);
  EXPECT_EQ(req.scenario.nodes, 8u);
  EXPECT_EQ(req.scenario.seed, 123u);
  EXPECT_EQ(req.scenario.reps, 2u);
  // Unspecified fields keep the CLI defaults.
  EXPECT_EQ(req.scenario.jobs, 128u);
  EXPECT_DOUBLE_EQ(req.scenario.demand, 600.0);
}

TEST(Protocol, RunWithoutParamsIsAllDefaults) {
  const ParsedRequest req = parse_request(R"({"id": 1, "op": "run"})");
  EXPECT_EQ(req.scenario.config_digest(), ScenarioRequest{}.config_digest());
}

TEST(Protocol, MalformedJsonThrowsRequestError) {
  EXPECT_THROW((void)parse_request("{nope"), RequestError);
  EXPECT_THROW((void)parse_request("[1,2]"), RequestError);
  EXPECT_THROW((void)parse_request(""), RequestError);
}

TEST(Protocol, ErrorsAfterIdParseCarryTheId) {
  try {
    (void)parse_request(R"({"id": 4, "op": "explode"})");
    FAIL() << "expected RequestError";
  } catch (const RequestError& e) {
    EXPECT_EQ(e.id(), 4u);
  }
  try {
    (void)parse_request(R"({"id": 5, "op": "run", "params": {"nodes": 0}})");
    FAIL() << "expected RequestError";
  } catch (const RequestError& e) {
    EXPECT_EQ(e.id(), 5u);
  }
}

TEST(Protocol, UnknownParamKeyIsRejected) {
  EXPECT_THROW(
      (void)parse_request(R"({"id": 1, "op": "run", "params": {"node": 8}})"),
      RequestError);
}

TEST(Protocol, ConfigDigestIgnoresSeedAndSeparatesConfigs) {
  ScenarioRequest a;
  ScenarioRequest b;
  b.seed = 999;
  EXPECT_EQ(a.config_digest(), b.config_digest());
  b.nodes = 65;
  EXPECT_NE(a.config_digest(), b.config_digest());
}

TEST(Protocol, ResponsesAreSingleParseableLines) {
  for (const std::string& line :
       {run_response(1, true, "abc:42", "{\n  \"x\": 1\n}\n"),
        pong_response(2), stats_response(3, "{\"ok\": 1}"),
        error_response(4, "bad \"quote\""), rejected_response(5, 25)}) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
    EXPECT_NO_THROW((void)json::parse(line)) << line;
  }
}

TEST(Protocol, RunResponseRoundTripsResultBytes) {
  const std::string sweep = "{\n  \"name\": \"cluster\",\n  \"x\": [1,2]\n}\n";
  const std::string line = run_response(7, false, "k:1", sweep);
  const json::Value doc = json::parse(line);
  EXPECT_EQ(doc.find("status")->as_string(), "ok");
  EXPECT_EQ(doc.find("cache")->as_string(), "miss");
  EXPECT_EQ(doc.find("result")->as_string(), sweep);  // exact bytes back
}

TEST(Protocol, RejectedResponseCarriesRetryAfter) {
  const json::Value doc = json::parse(rejected_response(6, 40));
  EXPECT_EQ(doc.find("status")->as_string(), "rejected");
  EXPECT_EQ(doc.find("retry_after_ms")->as_u64(), 40u);
}

TEST(Protocol, FormatKeyIsHexDigestColonSeed) {
  EXPECT_EQ(format_key(0xabcULL, 7), "0000000000000abc:7");
}

}  // namespace
}  // namespace ll::serve
