#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "serve/protocol.hpp"
#include "serve/scenario.hpp"
#include "util/json.hpp"

namespace ll::serve {
namespace {

namespace json = util::json;

/// Blocking line-oriented test client with a receive timeout, so a server
/// bug fails the test instead of hanging the suite.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    timeval timeout{30, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TestClient() { close(); }

  [[nodiscard]] bool connected() const { return connected_; }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool send_text(const std::string& text) {
    std::size_t off = 0;
    while (off < text.size()) {
      const ssize_t n =
          ::send(fd_, text.data() + off, text.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next full line (without '\n'); empty string on timeout/EOF.
  std::string read_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Reads one response line and parses it.
  json::Value read_response() {
    const std::string line = read_line();
    EXPECT_FALSE(line.empty()) << "no response (timeout or disconnect)";
    return line.empty() ? json::Value() : json::parse(line);
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// The small scenario every test serves: fast to simulate, fully default
/// otherwise.
constexpr const char* kSmallParams =
    R"({"nodes": 4, "jobs": 8, "demand": 30, "machines": 2, "days": 0.05})";

std::string run_request(std::uint64_t id, std::uint64_t seed) {
  return "{\"id\": " + std::to_string(id) + ", \"op\": \"run\", \"params\": " +
         std::string(kSmallParams).insert(1, "\"seed\": " +
                                                 std::to_string(seed) + ", ") +
         "}\n";
}

ScenarioRequest small_scenario(std::uint64_t seed) {
  ScenarioRequest req;
  req.nodes = 4;
  req.jobs = 8;
  req.demand = 30.0;
  req.machines = 2;
  req.days = 0.05;
  req.seed = seed;
  return req;
}

TEST(Server, StartsOnEphemeralPortAndShutsDownCleanly) {
  Server server(ServerConfig{});
  server.start();
  EXPECT_GT(server.port(), 0);
  server.shutdown();
  server.shutdown();  // idempotent
}

TEST(Server, AnswersPingAndStats) {
  Server server(ServerConfig{});
  server.start();
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_text("{\"id\": 1, \"op\": \"ping\"}\n"));
  json::Value pong = client.read_response();
  EXPECT_EQ(pong.find("id")->as_u64(), 1u);
  EXPECT_EQ(pong.find("status")->as_string(), "ok");
  EXPECT_TRUE(pong.find("pong")->as_bool());

  ASSERT_TRUE(client.send_text("{\"id\": 2, \"op\": \"stats\"}\n"));
  json::Value stats = client.read_response();
  EXPECT_EQ(stats.find("status")->as_string(), "ok");
  ASSERT_NE(stats.find("stats"), nullptr);
  EXPECT_NE(stats.find("stats")->find("requests_ok"), nullptr);
  server.shutdown();
}

TEST(Server, ServedResultIsByteIdenticalToOfflineSweep) {
  Server server(ServerConfig{});
  server.start();
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_text(run_request(1, 777)));
  json::Value response = client.read_response();
  ASSERT_EQ(response.find("status")->as_string(), "ok");
  EXPECT_EQ(response.find("cache")->as_string(), "miss");

  // The golden check: the bytes that crossed the wire are exactly what the
  // offline engine prints for the same scenario.
  const std::string offline = small_scenario(777).run(nullptr);
  EXPECT_EQ(response.find("result")->as_string(), offline);
  EXPECT_EQ(response.find("key")->as_string(),
            format_key(small_scenario(777).config_digest(), 777));
  server.shutdown();
}

TEST(Server, RepeatedRequestIsACacheHitWithIdenticalBytes) {
  Server server(ServerConfig{});
  server.start();
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_text(run_request(1, 5)));
  json::Value first = client.read_response();
  ASSERT_EQ(first.find("status")->as_string(), "ok");
  EXPECT_EQ(first.find("cache")->as_string(), "miss");

  ASSERT_TRUE(client.send_text(run_request(2, 5)));
  json::Value second = client.read_response();
  ASSERT_EQ(second.find("status")->as_string(), "ok");
  EXPECT_EQ(second.find("cache")->as_string(), "hit");
  EXPECT_EQ(second.find("result")->as_string(),
            first.find("result")->as_string());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_ok, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  server.shutdown();
}

TEST(Server, MalformedAndInvalidRequestsGetErrorsAndKeepTheConnection) {
  Server server(ServerConfig{});
  server.start();
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.send_text("this is not json\n"));
  json::Value err1 = client.read_response();
  EXPECT_EQ(err1.find("status")->as_string(), "error");

  ASSERT_TRUE(client.send_text(
      "{\"id\": 3, \"op\": \"run\", \"params\": {\"nodes\": -1}}\n"));
  json::Value err2 = client.read_response();
  EXPECT_EQ(err2.find("status")->as_string(), "error");
  EXPECT_EQ(err2.find("id")->as_u64(), 3u);

  // The connection survived both errors.
  ASSERT_TRUE(client.send_text("{\"id\": 4, \"op\": \"ping\"}\n"));
  EXPECT_EQ(client.read_response().find("status")->as_string(), "ok");

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_error, 2u);
  server.shutdown();
}

TEST(Server, OversizedRequestLineIsRejectedAndHungUp) {
  ServerConfig config;
  config.max_request_bytes = 128;
  Server server(config);
  server.start();
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_text(std::string(4096, 'x')));  // no newline ever
  json::Value err = client.read_response();
  EXPECT_EQ(err.find("status")->as_string(), "error");
  // After the error the server hangs up: the next read sees EOF.
  EXPECT_EQ(client.read_line(), "");
  server.shutdown();
}

TEST(Server, FullQueueRejectsWithRetryAfter) {
  ServerConfig config;
  config.queue_capacity = 1;
  config.batch_max = 1;
  config.retry_after_ms = 40;
  // Hold the dispatcher on its first batch so the queue stays full while
  // the test overflows it.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> batches{0};
  config.on_batch_start = [&](std::size_t) {
    batches.fetch_add(1);
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  Server server(config);
  server.start();
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  // r1 is popped into the (blocked) batch; r2 occupies the whole queue;
  // r3 must be rejected immediately by the reader thread.
  ASSERT_TRUE(client.send_text(run_request(1, 1)));
  while (batches.load() == 0) std::this_thread::yield();
  ASSERT_TRUE(client.send_text(run_request(2, 2)));
  while (server.queue_depth() == 0) std::this_thread::yield();
  ASSERT_TRUE(client.send_text(run_request(3, 3)));

  json::Value rejection = client.read_response();
  EXPECT_EQ(rejection.find("status")->as_string(), "rejected");
  EXPECT_EQ(rejection.find("id")->as_u64(), 3u);
  EXPECT_EQ(rejection.find("retry_after_ms")->as_u64(), 40u);

  {
    std::scoped_lock lock(mu);
    release = true;
  }
  cv.notify_all();
  // r1 and r2 still complete: admitted work is never dropped.
  EXPECT_EQ(client.read_response().find("status")->as_string(), "ok");
  EXPECT_EQ(client.read_response().find("status")->as_string(), "ok");
  server.shutdown();
  EXPECT_EQ(server.stats().requests_rejected, 1u);
}

TEST(Server, ClientDisconnectMidStreamDoesNotWedgeTheServer) {
  Server server(ServerConfig{});
  server.start();
  {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_text(run_request(1, 99)));
    client.close();  // vanish before the response arrives
  }
  // The request still executes; the response write fails harmlessly and
  // shutdown drains without hanging.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.stats().requests_ok == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.stats().requests_ok, 1u);
  server.shutdown();
}

TEST(Server, ShutdownDrainsAdmittedRequests) {
  ServerConfig config;
  config.batch_max = 1;  // force multiple batches
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> batches{0};
  config.on_batch_start = [&](std::size_t) {
    batches.fetch_add(1);
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  Server server(config);
  server.start();
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(client.send_text(run_request(static_cast<std::uint64_t>(i),
                                             static_cast<std::uint64_t>(i))));
  }
  // All four are admitted: one held in the blocked batch, three queued.
  while (batches.load() == 0) std::this_thread::yield();
  while (server.queue_depth() < 3) std::this_thread::yield();
  {
    std::scoped_lock lock(mu);
    release = true;
  }
  cv.notify_all();
  server.shutdown();  // must block until all four responses are written
  int ok = 0;
  for (int i = 0; i < 4; ++i) {
    const std::string line = client.read_line();
    if (line.empty()) break;
    if (json::parse(line).find("status")->as_string() == "ok") ++ok;
  }
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(server.stats().requests_ok, 4u);
}

TEST(Server, BatchCoalescesDuplicateKeysIntoOneSimulation) {
  ServerConfig config;
  config.batch_max = 8;
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> batches{0};
  config.on_batch_start = [&](std::size_t) {
    batches.fetch_add(1);
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  Server server(config);
  server.start();
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  // Hold the dispatcher on the batch containing id 10, then queue three
  // requests — two sharing a *fresh* key (seeds 7,7) and one distinct —
  // so they land in ONE later batch.
  ASSERT_TRUE(client.send_text(run_request(10, 1)));
  while (batches.load() == 0) std::this_thread::yield();
  ASSERT_TRUE(client.send_text(run_request(11, 7)));
  ASSERT_TRUE(client.send_text(run_request(12, 7)));
  ASSERT_TRUE(client.send_text(run_request(13, 8)));
  while (server.queue_depth() < 3) std::this_thread::yield();
  {
    std::scoped_lock lock(mu);
    release = true;
  }
  cv.notify_all();

  int misses = 0, hits = 0;
  for (int i = 0; i < 4; ++i) {
    json::Value response = client.read_response();
    ASSERT_EQ(response.find("status")->as_string(), "ok");
    (response.find("cache")->as_string() == "hit" ? hits : misses) += 1;
  }
  // Key 7 was requested twice in one batch with no cache entry: the batch
  // deduplicates, runs it once, and reports one miss + one coalesced hit.
  EXPECT_EQ(misses, 3);  // seeds 1, 7 (built once), 8
  EXPECT_EQ(hits, 1);    // the coalesced duplicate of seed 7
  server.shutdown();
}

}  // namespace
}  // namespace ll::serve
