#include "parallel/bsp.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ll::parallel {
namespace {

const workload::BurstTable& table() { return workload::default_burst_table(); }

BspConfig small_bsp(std::size_t procs = 8, std::size_t phases = 20) {
  BspConfig c;
  c.processes = procs;
  c.phases = phases;
  c.granularity = 0.1;
  return c;
}

TEST(Bsp, RejectsBadConfig) {
  std::vector<double> utils(8, 0.0);
  BspConfig zero_procs = small_bsp(0);
  EXPECT_THROW((void)(simulate_bsp(zero_procs, utils, table(), rng::Stream(1))),
               std::invalid_argument);

  BspConfig c = small_bsp(8);
  std::vector<double> wrong_size(4, 0.0);
  EXPECT_THROW((void)(simulate_bsp(c, wrong_size, table(), rng::Stream(1))),
               std::invalid_argument);

  std::vector<double> saturated(8, 0.0);
  saturated[0] = 1.0;
  EXPECT_THROW((void)(simulate_bsp(c, saturated, table(), rng::Stream(1))),
               std::invalid_argument);

  c.granularity = 0.0;
  EXPECT_THROW((void)(simulate_bsp(c, utils, table(), rng::Stream(1))),
               std::invalid_argument);
}

TEST(Bsp, AllIdleSlowdownIsOne) {
  const std::vector<double> utils(8, 0.0);
  const BspResult r = simulate_bsp(small_bsp(), utils, table(), rng::Stream(2));
  EXPECT_NEAR(r.slowdown(), 1.0, 1e-9);
  EXPECT_GT(r.time, 0.0);
  EXPECT_EQ(r.phases, 20u);
}

TEST(Bsp, IdealIncludesCommunication) {
  const std::vector<double> utils(8, 0.0);
  const BspConfig c = small_bsp();
  const BspResult r = simulate_bsp(c, utils, table(), rng::Stream(3));
  // Ideal > pure compute: communication is part of the baseline.
  EXPECT_GT(r.ideal, c.granularity * static_cast<double>(c.phases));
}

TEST(Bsp, OneLoadedNodeSlowsWholeJob) {
  std::vector<double> utils(8, 0.0);
  utils[0] = 0.5;
  const BspResult r = simulate_bsp(small_bsp(), utils, table(), rng::Stream(4));
  EXPECT_GT(r.slowdown(), 1.5);
}

TEST(Bsp, SlowdownMonotoneInUtilization) {
  double prev = 1.0;
  for (double u : {0.2, 0.5, 0.8}) {
    std::vector<double> utils(8, 0.0);
    utils[0] = u;
    const BspResult r =
        simulate_bsp(small_bsp(8, 40), utils, table(), rng::Stream(5));
    EXPECT_GT(r.slowdown(), prev) << u;
    prev = r.slowdown();
  }
}

TEST(Bsp, HighUtilizationApproachesRateLimit) {
  // One node at 90%: the loaded process runs ~10x slower; with modest
  // communication the job slowdown lands near the paper's Figure 9 value.
  std::vector<double> utils(8, 0.0);
  utils[0] = 0.9;
  const BspResult r =
      simulate_bsp(small_bsp(8, 60), utils, table(), rng::Stream(6));
  EXPECT_GT(r.slowdown(), 5.0);
  EXPECT_LT(r.slowdown(), 14.0);
}

TEST(Bsp, MoreLoadedNodesMoreSlowdown) {
  double prev = 1.0;
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    std::vector<double> utils(8, 0.0);
    for (std::size_t i = 0; i < k; ++i) utils[i] = 0.2;
    const BspResult r =
        simulate_bsp(small_bsp(8, 60), utils, table(), rng::Stream(7));
    EXPECT_GE(r.slowdown(), prev * 0.98) << k;  // allow tiny noise
    prev = r.slowdown();
  }
}

TEST(Bsp, CoarserGranularityLessSlowdown) {
  // Paper Figure 10: larger sync granularity damps the barrier penalty.
  std::vector<double> utils(8, 0.2);
  BspConfig fine = small_bsp(8, 60);
  fine.granularity = 0.01;
  BspConfig coarse = small_bsp(8, 60);
  coarse.granularity = 1.0;
  const double s_fine =
      simulate_bsp(fine, utils, table(), rng::Stream(8)).slowdown();
  const double s_coarse =
      simulate_bsp(coarse, utils, table(), rng::Stream(8)).slowdown();
  EXPECT_GT(s_fine, s_coarse);
}

TEST(Bsp, Deterministic) {
  std::vector<double> utils(8, 0.0);
  utils[2] = 0.3;
  const BspResult a = simulate_bsp(small_bsp(), utils, table(), rng::Stream(9));
  const BspResult b = simulate_bsp(small_bsp(), utils, table(), rng::Stream(9));
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_DOUBLE_EQ(a.ideal, b.ideal);
}

TEST(MessageTime, IdleDestinationIsBase) {
  BspConfig c = small_bsp();
  const double t = expected_message_time(c, 0.0, table());
  EXPECT_NEAR(t,
              c.per_message_overhead +
                  static_cast<double>(c.bytes_per_message) * 8.0 / c.bandwidth_bps +
                  c.handler_cpu,
              1e-12);
}

TEST(MessageTime, BusyDestinationCostsMore) {
  BspConfig c = small_bsp();
  double prev = expected_message_time(c, 0.0, table());
  for (double u : {0.2, 0.4, 0.6, 0.8}) {
    const double cur = expected_message_time(c, u, table());
    EXPECT_GT(cur, prev) << u;
    prev = cur;
  }
}

TEST(BspWork, FixedWorkScalesWithWidth) {
  // Same total work on more idle processes finishes faster.
  BspConfig c = small_bsp(4);
  c.granularity = 0.1;
  const double total_work = 8.0;
  std::vector<double> utils4(4, 0.0);
  const BspResult r4 =
      simulate_bsp_work(c, total_work, utils4, table(), rng::Stream(10));
  BspConfig c8 = small_bsp(8);
  c8.granularity = 0.1;
  std::vector<double> utils8(8, 0.0);
  const BspResult r8 =
      simulate_bsp_work(c8, total_work, utils8, table(), rng::Stream(10));
  EXPECT_GT(r4.time, r8.time * 1.5);
}

TEST(BspWork, PartialFinalPhase) {
  BspConfig c = small_bsp(2);
  c.granularity = 1.0;
  std::vector<double> utils(2, 0.0);
  // 3 proc-seconds over 2 procs at 1 s granularity: 1 full + 1 half phase.
  const BspResult r = simulate_bsp_work(c, 3.0, utils, table(), rng::Stream(11));
  EXPECT_EQ(r.phases, 2u);
  // All nodes idle: actual == ideal, and compute contributes exactly 1.5 s.
  EXPECT_NEAR(r.time, r.ideal, 1e-9);
  const double per_phase_comm = (r.ideal - 1.5) / 2.0;
  EXPECT_GT(per_phase_comm, 0.0);
}

TEST(BspWork, RejectsBadWork) {
  BspConfig c = small_bsp(2);
  std::vector<double> utils(2, 0.0);
  EXPECT_THROW((void)(simulate_bsp_work(c, 0.0, utils, table(), rng::Stream(12))),
               std::invalid_argument);
}

TEST(Bsp, NoClosingBarrierOverlapsComm) {
  // Without a closing barrier the phase critical path is per-process, which
  // can only be <= the barriered version.
  std::vector<double> utils(8, 0.0);
  utils[0] = 0.4;
  BspConfig with = small_bsp(8, 40);
  BspConfig without = small_bsp(8, 40);
  without.closing_barrier = false;
  const double t_with =
      simulate_bsp(with, utils, table(), rng::Stream(13)).time;
  const double t_without =
      simulate_bsp(without, utils, table(), rng::Stream(13)).time;
  EXPECT_LE(t_without, t_with + 1e-9);
}

}  // namespace
}  // namespace ll::parallel
