#include "parallel/contention.hpp"

#include <gtest/gtest.h>

#include "stats/summary.hpp"

namespace ll::parallel {
namespace {

const workload::BurstTable& table() { return workload::default_burst_table(); }

TEST(Contention, RejectsBadInputs) {
  EXPECT_THROW((void)(ContentionSampler(table(), -1e-6)), std::invalid_argument);
  ContentionSampler sampler(table(), 100e-6);
  rng::Stream s(1);
  EXPECT_THROW((void)(sampler.sample(-1.0, 0.2, s)), std::invalid_argument);
  EXPECT_THROW((void)(sampler.sample(1.0, 0.999, s)), std::invalid_argument);
}

TEST(Contention, IdleNodeIsExact) {
  ContentionSampler sampler(table(), 100e-6);
  rng::Stream s(2);
  EXPECT_DOUBLE_EQ(sampler.sample(0.5, 0.0, s), 0.5);
  EXPECT_DOUBLE_EQ(sampler.sample(0.5, 0.001, s), 0.5);  // below epsilon
  EXPECT_DOUBLE_EQ(sampler.expected(0.5, 0.0), 0.5);
}

TEST(Contention, ZeroWorkIsInstant) {
  ContentionSampler sampler(table(), 100e-6);
  rng::Stream s(3);
  EXPECT_DOUBLE_EQ(sampler.sample(0.0, 0.5, s), 0.0);
}

TEST(Contention, StretchAtLeastWork) {
  ContentionSampler sampler(table(), 100e-6);
  rng::Stream s(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(sampler.sample(0.1, 0.4, s), 0.1);
  }
}

TEST(Contention, Deterministic) {
  ContentionSampler sampler(table(), 100e-6);
  rng::Stream a(5);
  rng::Stream b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(sampler.sample(0.2, 0.3, a), sampler.sample(0.2, 0.3, b));
  }
}

// The sampler's mean must converge to the closed-form expectation
// work / ((1-u) fcsr(u)) across utilizations and work sizes.
class MeanSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MeanSweep, SampleMeanMatchesExpectation) {
  const auto [work, u] = GetParam();
  ContentionSampler sampler(table(), 100e-6);
  rng::Stream s(6);
  stats::Summary sum;
  const int n = work >= 1.0 ? 2000 : 8000;
  for (int i = 0; i < n; ++i) sum.add(sampler.sample(work, u, s));
  const double expected = sampler.expected(work, u);
  if (work >= 1.0) {
    // Long work amortizes the initial phase: the renewal-reward asymptote
    // applies directly.
    EXPECT_NEAR(sum.mean(), expected, expected * 0.05)
        << "work=" << work << " u=" << u;
  } else {
    // Short work quanta pay an initial-phase overhead of up to one owner
    // run burst (probability u) on top of the asymptotic mean.
    const double burst = table().moments_at(u).run_mean;
    EXPECT_GE(sum.mean(), expected * 0.9) << "work=" << work << " u=" << u;
    EXPECT_LE(sum.mean(), expected * 1.05 + u * burst * 2.0)
        << "work=" << work << " u=" << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkAndUtil, MeanSweep,
    ::testing::Combine(::testing::Values(0.05, 0.5, 2.0),
                       ::testing::Values(0.1, 0.2, 0.4, 0.6, 0.8)));

TEST(Contention, MoreLoadMoreStretch) {
  ContentionSampler sampler(table(), 100e-6);
  EXPECT_LT(sampler.expected(1.0, 0.2), sampler.expected(1.0, 0.5));
  EXPECT_LT(sampler.expected(1.0, 0.5), sampler.expected(1.0, 0.8));
}

TEST(Contention, HeavyTailExists) {
  // The barrier-max effect the parallel results rest on: individual samples
  // well above the mean must occur at moderate utilization.
  ContentionSampler sampler(table(), 100e-6);
  rng::Stream s(7);
  const double work = 0.05;
  const double expected = sampler.expected(work, 0.2);
  int above_double = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (sampler.sample(work, 0.2, s) > 2.0 * expected) ++above_double;
  }
  EXPECT_GT(above_double, n / 100);  // > 1% of samples at > 2x the mean
}

TEST(Contention, ExpectedMatchesRateTable) {
  ContentionSampler sampler(table(), 100e-6);
  const auto rates = node::EffectiveRateTable::analytic(table(), 100e-6);
  for (double u : {0.1, 0.3, 0.7}) {
    EXPECT_NEAR(sampler.expected(2.0, u), 2.0 / rates.foreign_rate(u), 1e-9);
  }
}

}  // namespace
}  // namespace ll::parallel
