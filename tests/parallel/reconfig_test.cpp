#include "parallel/reconfig.hpp"

#include <gtest/gtest.h>

namespace ll::parallel {
namespace {

const workload::BurstTable& table() { return workload::default_burst_table(); }

ReconfigScenario scenario32() {
  ReconfigScenario s;
  s.cluster_nodes = 32;
  s.nonidle_util = 0.2;
  s.total_work = 38.4;
  s.bsp.granularity = 0.5;  // the paper's 500 ms sync frequency
  return s;
}

TEST(FloorPow2, KnownValues) {
  EXPECT_EQ(floor_pow2(1), 1u);
  EXPECT_EQ(floor_pow2(2), 2u);
  EXPECT_EQ(floor_pow2(3), 2u);
  EXPECT_EQ(floor_pow2(31), 16u);
  EXPECT_EQ(floor_pow2(32), 32u);
  EXPECT_EQ(floor_pow2(33), 32u);
  EXPECT_THROW((void)(floor_pow2(0)), std::invalid_argument);
}

TEST(LlCompletion, RejectsBadArguments) {
  const auto s = scenario32();
  EXPECT_THROW((void)(ll_completion(s, 0, 10, table(), rng::Stream(1))),
               std::invalid_argument);
  EXPECT_THROW((void)(ll_completion(s, 33, 10, table(), rng::Stream(1))),
               std::invalid_argument);
  EXPECT_THROW((void)(ll_completion(s, 8, 33, table(), rng::Stream(1))),
               std::invalid_argument);
  EXPECT_THROW((void)(reconfig_completion(s, 33, table(), rng::Stream(1))),
               std::invalid_argument);
}

TEST(LlCompletion, AllIdleMatchesWidthScaling) {
  const auto s = scenario32();
  const double t32 = ll_completion(s, 32, 32, table(), rng::Stream(2));
  const double t16 = ll_completion(s, 16, 32, table(), rng::Stream(2));
  const double t8 = ll_completion(s, 8, 32, table(), rng::Stream(2));
  // Work-bound: halving the width roughly doubles the compute time.
  EXPECT_GT(t16, t32 * 1.5);
  EXPECT_GT(t8, t16 * 1.5);
}

TEST(LlCompletion, FlatWhileEnoughIdleNodes) {
  // LL-8 runs entirely on idle nodes whenever idle >= 8: completion is
  // independent of the exact idle count.
  const auto s = scenario32();
  const double a = ll_completion(s, 8, 32, table(), rng::Stream(3));
  const double b = ll_completion(s, 8, 8, table(), rng::Stream(3));
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(LlCompletion, DegradesGracefullyBelowWidth) {
  const auto s = scenario32();
  const double full = ll_completion(s, 32, 32, table(), rng::Stream(4));
  const double some = ll_completion(s, 32, 24, table(), rng::Stream(4));
  const double none = ll_completion(s, 32, 0, table(), rng::Stream(4));
  EXPECT_GT(some, full);
  EXPECT_GT(none, some);
  // At 20% load even the all-busy case is bounded by the leftover rate.
  EXPECT_LT(none, full * 3.0);
}

TEST(Reconfig, UsesLargestPowerOfTwo) {
  const auto s = scenario32();
  // 31 idle -> 16 nodes; 32 idle -> 32 nodes. The 32-node run must be
  // roughly twice as fast.
  const double t31 = reconfig_completion(s, 31, table(), rng::Stream(5));
  const double t32 = reconfig_completion(s, 32, table(), rng::Stream(5));
  EXPECT_GT(t31, t32 * 1.5);
}

TEST(Reconfig, StepFunctionBetweenPowers) {
  const auto s = scenario32();
  // Anywhere in [16, 31] idle nodes, reconfiguration runs on 16.
  const double t16 = reconfig_completion(s, 16, table(), rng::Stream(6));
  const double t24 = reconfig_completion(s, 24, table(), rng::Stream(6));
  EXPECT_DOUBLE_EQ(t16, t24);
}

TEST(Reconfig, ZeroIdleFallsBackToOneBusyNode) {
  const auto s = scenario32();
  const double t = reconfig_completion(s, 0, table(), rng::Stream(7));
  // Serial execution of 38.4 proc-seconds, stretched by 20% load.
  EXPECT_GT(t, 38.4);
  EXPECT_LT(t, 38.4 * 2.5);
}

TEST(LlVsReconfig, PaperFigure11Crossover) {
  // With few non-idle nodes, LL-32 beats reconfiguration's shrink to 16;
  // reconfiguration wins when it keeps full width (all 32 idle).
  const auto s = scenario32();
  // 29 idle (3 lingering): LL-32 keeps width 32; reconfig drops to 16.
  const double ll32 = ll_completion(s, 32, 29, table(), rng::Stream(8));
  const double rec = reconfig_completion(s, 29, table(), rng::Stream(8));
  EXPECT_LT(ll32, rec);
  // All idle: both run 32 wide; LL has no edge.
  const double ll_full = ll_completion(s, 32, 32, table(), rng::Stream(9));
  const double rec_full = reconfig_completion(s, 32, table(), rng::Stream(9));
  EXPECT_NEAR(ll_full, rec_full, rec_full * 0.1);
}

TEST(LlVsReconfig, Ll16BeatsReconfigBelow16Idle) {
  const auto s = scenario32();
  // 12 idle nodes: reconfig shrinks to 8; LL-16 lingers on 4 busy nodes.
  const double ll16 = ll_completion(s, 16, 12, table(), rng::Stream(10));
  const double rec = reconfig_completion(s, 12, table(), rng::Stream(10));
  EXPECT_LT(ll16, rec);
}

TEST(Determinism, SameSeedSameResult) {
  const auto s = scenario32();
  EXPECT_DOUBLE_EQ(ll_completion(s, 16, 10, table(), rng::Stream(11)),
                   ll_completion(s, 16, 10, table(), rng::Stream(11)));
  EXPECT_DOUBLE_EQ(reconfig_completion(s, 10, table(), rng::Stream(12)),
                   reconfig_completion(s, 10, table(), rng::Stream(12)));
}

}  // namespace
}  // namespace ll::parallel
