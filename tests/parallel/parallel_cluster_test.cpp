#include "parallel/parallel_cluster.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "parallel/reconfig.hpp"

namespace ll::parallel {
namespace {

const trace::RecruitmentRule kInstantRule{0.1, 2.0};

const workload::BurstTable& table() { return workload::default_burst_table(); }

trace::CoarseTrace constant_trace(double cpu, std::size_t windows = 4000) {
  trace::CoarseTrace t(2.0);
  for (std::size_t i = 0; i < windows; ++i) t.push({cpu, 65536, false});
  return t;
}

ParallelClusterConfig base_config(WidthPolicy policy, std::size_t nodes) {
  ParallelClusterConfig cfg;
  cfg.node_count = nodes;
  cfg.policy = policy;
  cfg.recruitment = kInstantRule;
  cfg.randomize_placement = false;
  return cfg;
}

ParallelJobSpec small_job(double work = 6.4, double granularity = 0.1) {
  ParallelJobSpec spec;
  spec.total_work = work;
  spec.bsp.granularity = granularity;
  spec.max_width = 32;
  return spec;
}

TEST(WidthPolicyNames, Stable) {
  EXPECT_EQ(to_string(WidthPolicy::Reconfigure), "reconfigure");
  EXPECT_EQ(to_string(WidthPolicy::FixedLinger), "fixed-linger");
  EXPECT_EQ(to_string(WidthPolicy::Hybrid), "hybrid");
}

TEST(ParallelCluster, RejectsBadConstruction) {
  std::vector<trace::CoarseTrace> empty_pool;
  EXPECT_THROW((void)(ParallelClusterSim(base_config(WidthPolicy::Hybrid, 4),
                                  empty_pool, table(), rng::Stream(1))),
               std::invalid_argument);

  std::vector<trace::CoarseTrace> pool{constant_trace(0.0)};
  auto zero_nodes = base_config(WidthPolicy::Hybrid, 0);
  EXPECT_THROW((void)(
      ParallelClusterSim(zero_nodes, pool, table(), rng::Stream(1))),
      std::invalid_argument);

  auto bad_width = base_config(WidthPolicy::FixedLinger, 4);
  bad_width.fixed_width = 8;
  EXPECT_THROW((void)(
      ParallelClusterSim(bad_width, pool, table(), rng::Stream(1))),
      std::invalid_argument);
}

TEST(ParallelCluster, RejectsBadJobSpecs) {
  std::vector<trace::CoarseTrace> pool{constant_trace(0.0)};
  ParallelClusterSim sim(base_config(WidthPolicy::Hybrid, 4), pool, table(),
                         rng::Stream(1));
  ParallelJobSpec zero_work = small_job(0.0);
  EXPECT_THROW((void)(sim.submit(zero_work)), std::invalid_argument);
  ParallelJobSpec zero_width = small_job();
  zero_width.max_width = 0;
  EXPECT_THROW((void)(sim.submit(zero_width)), std::invalid_argument);
}

TEST(ParallelCluster, ReconfigureUsesAllIdleNodesPowerOfTwo) {
  std::vector<trace::CoarseTrace> pool{constant_trace(0.0)};
  ParallelClusterSim sim(base_config(WidthPolicy::Reconfigure, 12), pool,
                         table(), rng::Stream(2));
  sim.submit(small_job(9.6));
  sim.run_until_all_complete();
  const auto& job = sim.jobs().front();
  EXPECT_EQ(job.width, 8u);  // floor_pow2(12)
  EXPECT_EQ(job.idle_at_dispatch, 8u);
  // 9.6 proc-s on 8 idle procs = 1.2 s of compute plus comm.
  EXPECT_GT(*job.completion, 1.2);
  EXPECT_LT(*job.completion, 2.0);
  EXPECT_NEAR(sim.delivered_work(), 9.6, 1e-9);
}

TEST(ParallelCluster, FixedLingerTakesBusyNodes) {
  // All nodes busy at 30%: reconfigure would wait forever, fixed-linger runs.
  std::vector<trace::CoarseTrace> pool{constant_trace(0.3)};
  auto cfg = base_config(WidthPolicy::FixedLinger, 8);
  cfg.fixed_width = 8;
  ParallelClusterSim sim(cfg, pool, table(), rng::Stream(3));
  sim.submit(small_job(6.4));
  sim.run_until_all_complete();
  const auto& job = sim.jobs().front();
  EXPECT_EQ(job.width, 8u);
  EXPECT_EQ(job.idle_at_dispatch, 0u);
  // Stretched by the 30% owner load: clearly slower than the idle-node time.
  EXPECT_GT(*job.completion, 6.4 / 8.0 * 1.2);
}

TEST(ParallelCluster, ReconfigureWaitsForIdleNodes) {
  // Busy for the first 10 windows (20 s), idle afterwards.
  trace::CoarseTrace t(2.0);
  for (int i = 0; i < 10; ++i) t.push({0.5, 65536, false});
  for (int i = 0; i < 2000; ++i) t.push({0.0, 65536, false});
  std::vector<trace::CoarseTrace> pool{t};
  ParallelClusterSim sim(base_config(WidthPolicy::Reconfigure, 4), pool,
                         table(), rng::Stream(4));
  sim.submit(small_job(3.2));
  sim.run_until_all_complete();
  const auto& job = sim.jobs().front();
  EXPECT_GE(job.queue_wait(), 20.0 - 2.1);
  EXPECT_EQ(job.idle_at_dispatch, job.width);
}

TEST(ParallelCluster, FifoQueueing) {
  std::vector<trace::CoarseTrace> pool{constant_trace(0.0)};
  auto cfg = base_config(WidthPolicy::FixedLinger, 4);
  cfg.fixed_width = 4;
  ParallelClusterSim sim(cfg, pool, table(), rng::Stream(5));
  sim.submit(small_job(8.0));
  sim.submit(small_job(8.0));
  sim.run_until_all_complete();
  const auto& jobs = sim.jobs();
  // Second job starts only after the first released its nodes.
  EXPECT_NEAR(*jobs[1].start_time, *jobs[0].completion, 1e-9);
  EXPECT_NEAR(sim.delivered_work(), 16.0, 1e-9);
}

TEST(ParallelCluster, HybridGoesWideOnIdleCluster) {
  std::vector<trace::CoarseTrace> pool{constant_trace(0.0)};
  ParallelClusterSim sim(base_config(WidthPolicy::Hybrid, 16), pool, table(),
                         rng::Stream(6));
  sim.submit(small_job(12.8));
  sim.run_until_all_complete();
  EXPECT_EQ(sim.jobs().front().width, 16u);
}

TEST(ParallelCluster, HybridShrinksWhenBusyNodesWouldDominate) {
  // 2 idle nodes, 14 at 90% owner load: lingering wide would crawl at the
  // barrier; the predictor should choose a narrow, mostly-idle width.
  std::vector<trace::CoarseTrace> pool{constant_trace(0.0),
                                       constant_trace(0.9)};
  auto cfg = base_config(WidthPolicy::Hybrid, 16);
  // node i -> pool[i % 2]: even nodes idle, odd nodes busy... use 2 idle:
  // instead make pool of 16 traces: 2 idle + 14 busy.
  std::vector<trace::CoarseTrace> big_pool;
  for (int i = 0; i < 2; ++i) big_pool.push_back(constant_trace(0.0));
  for (int i = 0; i < 14; ++i) big_pool.push_back(constant_trace(0.9));
  ParallelClusterSim sim(cfg, big_pool, table(), rng::Stream(7));
  sim.submit(small_job(6.4));
  sim.run_until_all_complete();
  const auto& job = sim.jobs().front();
  EXPECT_LE(job.width, 4u);
  EXPECT_GE(job.idle_at_dispatch, std::min<std::size_t>(job.width, 2));
}

TEST(ParallelCluster, Deterministic) {
  std::vector<trace::CoarseTrace> pool{constant_trace(0.2)};
  auto run = [&] {
    auto cfg = base_config(WidthPolicy::FixedLinger, 8);
    cfg.fixed_width = 8;
    ParallelClusterSim sim(cfg, pool, table(), rng::Stream(8));
    sim.submit(small_job(6.4));
    sim.run_until_all_complete();
    return *sim.jobs().front().completion;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(ParallelCluster, ClosedModeSustainsThroughput) {
  std::vector<trace::CoarseTrace> pool{constant_trace(0.0)};
  auto cfg = base_config(WidthPolicy::Hybrid, 8);
  ParallelClusterSim sim(cfg, pool, table(), rng::Stream(9));
  sim.set_completion_callback(
      [&sim](const ParallelJobRecord&) { sim.submit(small_job(8.0)); });
  sim.submit(small_job(8.0));
  sim.run_for(300.0);
  // 8 idle nodes, comm overhead small: most of the 300 s turns into work.
  EXPECT_GT(sim.delivered_work(), 300.0 * 8.0 * 0.5);
  EXPECT_GT(sim.jobs().size(), 20u);
}

TEST(ParallelCluster, RunForRejectsNegative) {
  std::vector<trace::CoarseTrace> pool{constant_trace(0.0)};
  ParallelClusterSim sim(base_config(WidthPolicy::Hybrid, 2), pool, table(),
                         rng::Stream(10));
  EXPECT_THROW((void)(sim.run_for(-1.0)), std::invalid_argument);
}

TEST(ParallelCluster, ThroughputOrderingOnMixedCluster) {
  // Half the nodes carry 20% owner load. Lingering policies outrun
  // reconfiguration, which can only ever use the idle half.
  std::vector<trace::CoarseTrace> pool;
  for (int i = 0; i < 8; ++i) {
    pool.push_back(constant_trace(i % 2 == 0 ? 0.0 : 0.2));
  }
  auto run_policy = [&](WidthPolicy policy) {
    auto cfg = base_config(policy, 8);
    cfg.fixed_width = 8;
    ParallelClusterSim sim(cfg, pool, table(), rng::Stream(11));
    sim.set_completion_callback(
        [&sim](const ParallelJobRecord&) { sim.submit(small_job(16.0, 0.2)); });
    for (int i = 0; i < 2; ++i) sim.submit(small_job(16.0, 0.2));
    sim.run_for(600.0);
    return sim.delivered_work();
  };
  const double rec = run_policy(WidthPolicy::Reconfigure);
  const double fixed = run_policy(WidthPolicy::FixedLinger);
  const double hybrid = run_policy(WidthPolicy::Hybrid);
  EXPECT_GT(fixed, rec);
  EXPECT_GT(hybrid, rec);
}

TEST(ParallelCluster, NonPowerOfTwoWidthsWhenUnconstrained) {
  // 12 free nodes, power-of-two disabled: hybrid may take all 12.
  std::vector<trace::CoarseTrace> pool{constant_trace(0.0)};
  auto cfg = base_config(WidthPolicy::Hybrid, 12);
  cfg.power_of_two = false;
  ParallelClusterSim sim(cfg, pool, table(), rng::Stream(31));
  sim.submit(small_job(24.0));
  sim.run_until_all_complete();
  EXPECT_EQ(sim.jobs().front().width, 12u);
}

TEST(ParallelCluster, ReconfigurePowerOfTwoOffUsesAllIdle) {
  std::vector<trace::CoarseTrace> pool{constant_trace(0.0)};
  auto cfg = base_config(WidthPolicy::Reconfigure, 6);
  cfg.power_of_two = false;
  ParallelClusterSim sim(cfg, pool, table(), rng::Stream(32));
  sim.submit(small_job(12.0));
  sim.run_until_all_complete();
  EXPECT_EQ(sim.jobs().front().width, 6u);
}

TEST(ParallelCluster, MaxWidthCapsBelowClusterSize) {
  std::vector<trace::CoarseTrace> pool{constant_trace(0.0)};
  ParallelClusterSim sim(base_config(WidthPolicy::Hybrid, 16), pool, table(),
                         rng::Stream(33));
  ParallelJobSpec spec = small_job(12.8);
  spec.max_width = 4;
  sim.submit(spec);
  sim.run_until_all_complete();
  EXPECT_LE(sim.jobs().front().width, 4u);
}

TEST(ParallelCluster, WidthCappedJobsRunConcurrently) {
  // Two jobs capped at width 8 on 16 idle nodes start together.
  std::vector<trace::CoarseTrace> pool{constant_trace(0.0)};
  ParallelClusterSim sim(base_config(WidthPolicy::Hybrid, 16), pool, table(),
                         rng::Stream(34));
  ParallelJobSpec spec = small_job(16.0);
  spec.max_width = 8;
  sim.submit(spec);
  sim.submit(spec);
  sim.run_until_all_complete();
  const auto& jobs = sim.jobs();
  EXPECT_DOUBLE_EQ(*jobs[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(*jobs[1].start_time, 0.0);
  EXPECT_EQ(jobs[0].width, 8u);
  EXPECT_EQ(jobs[1].width, 8u);
}

// ---- hybrid single-job strategy (reconfig.hpp) ---------------------------

TEST(HybridWidth, WideOnIdleCluster) {
  ReconfigScenario s;
  s.cluster_nodes = 32;
  s.nonidle_util = 0.2;
  s.total_work = 38.4;
  s.bsp.granularity = 0.5;
  EXPECT_EQ(choose_hybrid_width(s, 32, table()), 32u);
}

TEST(HybridWidth, ShrinksUnderHeavyOwnerLoad) {
  ReconfigScenario s;
  s.cluster_nodes = 32;
  s.nonidle_util = 0.85;  // lingering nodes crawl
  s.total_work = 38.4;
  s.bsp.granularity = 0.5;
  // With 8 idle nodes and heavy owners elsewhere, hybrid should not linger.
  EXPECT_LE(choose_hybrid_width(s, 8, table()), 8u);
}

TEST(HybridWidth, RejectsBadIdleCount) {
  ReconfigScenario s;
  EXPECT_THROW((void)(choose_hybrid_width(s, s.cluster_nodes + 1, table())),
               std::invalid_argument);
}

TEST(HybridCompletion, NeverMuchWorseThanEitherPure) {
  ReconfigScenario s;
  s.cluster_nodes = 16;
  s.nonidle_util = 0.2;
  s.total_work = 19.2;
  s.bsp.granularity = 0.5;
  for (std::size_t idle : {16u, 12u, 8u, 4u, 0u}) {
    const double hybrid =
        hybrid_completion(s, idle, table(), rng::Stream(12));
    const double rec =
        reconfig_completion(s, idle, table(), rng::Stream(12));
    const double ll16 = ll_completion(s, 16, idle, table(), rng::Stream(12));
    EXPECT_LE(hybrid, std::min(rec, ll16) * 1.35) << "idle=" << idle;
  }
}

TEST(ParallelCluster, ObservabilityAttachmentDoesNotChangeResults) {
  std::vector<trace::CoarseTrace> pool{constant_trace(0.2)};
  auto run = [&](bool instrument, obs::MetricRegistry* reg,
                 obs::Timeline* tl) {
    auto cfg = base_config(WidthPolicy::Hybrid, 8);
    ParallelClusterSim sim(cfg, pool, table(), rng::Stream(11));
    if (instrument) {
      sim.set_metrics(reg);
      sim.set_timeline(tl);
    }
    sim.submit(small_job(6.4));
    sim.submit(small_job(3.2));
    sim.run_until_all_complete();
    std::vector<double> completions;
    for (const auto& j : sim.jobs()) completions.push_back(*j.completion);
    return completions;
  };
  const auto plain = run(false, nullptr, nullptr);
  obs::MetricRegistry reg;
  obs::Timeline tl(128);
  const auto instrumented = run(true, &reg, &tl);
  EXPECT_EQ(plain, instrumented);

  // Metrics agree with the run: 2 submitted, 2 completed, phases fired.
  // (Snapshot past the run's end: the time-weighted integrals close at the
  // snapshot instant, which must not precede their last update.)
  const auto samples = reg.snapshot(1e9);
  ASSERT_GE(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "parallel.jobs_submitted");
  EXPECT_DOUBLE_EQ(samples[0].value, 2.0);
  EXPECT_DOUBLE_EQ(samples[1].value, 2.0);  // jobs_completed
  EXPECT_GT(samples[2].value, 0.0);         // phases_completed

  // Timeline saw the BSP lifecycle: queued -> running -> phase... -> done.
  bool queued = false;
  bool running = false;
  bool phase = false;
  bool done = false;
  for (const auto& r : tl.records()) {
    if (r.state == "queued") queued = true;
    if (r.state == "running") running = true;
    if (r.state == "phase") phase = true;
    if (r.state == "done") done = true;
  }
  EXPECT_TRUE(queued && running && phase && done);
}

TEST(ParallelCluster, EngineAccessorExposesConservedCounters) {
  std::vector<trace::CoarseTrace> pool{constant_trace(0.0)};
  ParallelClusterSim sim(base_config(WidthPolicy::Hybrid, 4), pool, table(),
                         rng::Stream(12));
  sim.submit(small_job(3.2));
  sim.run_until_all_complete();
  const des::Simulation& engine = sim.engine();
  EXPECT_GT(engine.events_fired(), 0u);
  EXPECT_EQ(engine.events_scheduled(),
            engine.events_fired() + engine.events_cancelled() +
                engine.pending_count());
}

}  // namespace
}  // namespace ll::parallel
