#include "parallel/apps.hpp"

#include <gtest/gtest.h>

namespace ll::parallel {
namespace {

const workload::BurstTable& table() { return workload::default_burst_table(); }

TEST(Apps, FactoriesSetWidth) {
  for (const AppModel& app : all_app_models(8)) {
    EXPECT_EQ(app.bsp.processes, 8u) << app.name;
    EXPECT_GT(app.bsp.phases, 0u) << app.name;
    EXPECT_GT(app.bsp.granularity, 0.0) << app.name;
  }
  EXPECT_EQ(all_app_models(8).size(), 3u);
}

TEST(Apps, NamesAreStable) {
  EXPECT_EQ(sor_model(8).name, "sor");
  EXPECT_EQ(water_model(8).name, "water");
  EXPECT_EQ(fft_model(8).name, "fft");
}

TEST(Apps, FftIsCommunicationDominated) {
  // Communication fraction ordering drives the sensitivity result: compute
  // the all-idle per-phase comm/compute ratio per app.
  auto comm_fraction = [](const AppModel& app) {
    const double msg = expected_message_time(app.bsp, 0.0, table());
    const double comm =
        msg * static_cast<double>(app.bsp.messages_per_process);
    return comm / (comm + app.bsp.granularity);
  };
  const double sor = comm_fraction(sor_model(8));
  const double water = comm_fraction(water_model(8));
  const double fft = comm_fraction(fft_model(8));
  EXPECT_LT(sor, water);
  EXPECT_LT(water, fft);
  EXPECT_GT(fft, 0.5);   // fft mostly communicates
  EXPECT_LT(sor, 0.25);  // sor mostly computes
}

TEST(Apps, FftTalksToEveryone) {
  EXPECT_EQ(fft_model(8).bsp.messages_per_process, 7u);
  EXPECT_EQ(fft_model(16).bsp.messages_per_process, 15u);
  EXPECT_EQ(sor_model(16).bsp.messages_per_process, 2u);
}

TEST(AppSlowdown, AllIdleIsOne) {
  for (const AppModel& app : all_app_models(8)) {
    const double s = app_slowdown(app, 0, 0.2, table(), rng::Stream(1));
    EXPECT_NEAR(s, 1.0, 1e-9) << app.name;
  }
}

TEST(AppSlowdown, RejectsTooManyNonIdleNodes) {
  EXPECT_THROW((void)(app_slowdown(sor_model(8), 9, 0.2, table(), rng::Stream(1))),
               std::invalid_argument);
}

TEST(AppSlowdown, MonotoneInNonIdleNodes) {
  const AppModel app = sor_model(8);
  double prev = 1.0;
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    const double s = app_slowdown(app, k, 0.2, table(), rng::Stream(2));
    EXPECT_GE(s, prev * 0.97) << k;
    prev = s;
  }
}

TEST(AppSlowdown, PaperFigure12Anchors) {
  // §5.2: one non-idle node at 40% slows each app to at most ~1.7; with
  // 4 non-idle nodes at 20% the slowdown is ~1.5-1.6; with all 8 non-idle at
  // 20% it is just above 2.
  for (const AppModel& app : all_app_models(8)) {
    const double one_node_40 =
        app_slowdown(app, 1, 0.4, table(), rng::Stream(3));
    EXPECT_GT(one_node_40, 1.05) << app.name;
    EXPECT_LT(one_node_40, 2.3) << app.name;

    const double all_20 = app_slowdown(app, 8, 0.2, table(), rng::Stream(4));
    EXPECT_GT(all_20, 1.35) << app.name;
    EXPECT_LT(all_20, 3.4) << app.name;
  }
}

TEST(AppSlowdown, SensitivityOrderingSorMostFftLeast) {
  // Paper §5.2: sor is most sensitive to local load, fft least, because
  // time spent in communication is not stretched by CPU contention.
  const double sor = app_slowdown(sor_model(8), 8, 0.4, table(), rng::Stream(5));
  const double water =
      app_slowdown(water_model(8), 8, 0.4, table(), rng::Stream(5));
  const double fft = app_slowdown(fft_model(8), 8, 0.4, table(), rng::Stream(5));
  EXPECT_GT(sor, water * 0.98);
  EXPECT_GT(water, fft * 0.98);
  EXPECT_GT(sor, fft);
}

TEST(Apps, ScaleToSixteenProcesses) {
  // The Figure 13 experiments run the apps 16-wide; the models must stay
  // well-behaved there (fft grows its all-to-all fan-out, others don't).
  for (const AppModel& app : all_app_models(16)) {
    const double s = app_slowdown(app, 4, 0.2, table(), rng::Stream(40));
    EXPECT_GT(s, 1.0) << app.name;
    EXPECT_LT(s, 3.0) << app.name;
  }
}

TEST(AppSlowdown, MonotoneInLocalUtilization) {
  const AppModel app = water_model(8);
  double prev = 1.0;
  for (double u : {0.1, 0.2, 0.3, 0.4}) {
    const double s = app_slowdown(app, 4, u, table(), rng::Stream(41));
    EXPECT_GE(s, prev * 0.95) << u;  // small noise allowance
    prev = s;
  }
}

TEST(AppSlowdown, Deterministic) {
  const double a = app_slowdown(water_model(8), 3, 0.3, table(), rng::Stream(6));
  const double b = app_slowdown(water_model(8), 3, 0.3, table(), rng::Stream(6));
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace ll::parallel
