#include "cli/driver.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "trace/trace_io.hpp"
#include "util/json.hpp"
#include "workload/fine_generator.hpp"
#include "workload/table_io.hpp"

namespace ll::cli {
namespace {

namespace fs = std::filesystem;

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("llsim_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  fs::path dir_;
};

TEST(CliBasics, NoArgsPrintsUsageAndFails) {
  const CliResult r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("Subcommands"), std::string::npos);
}

TEST(CliBasics, HelpSucceeds) {
  const CliResult r = run({"--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("llsim"), std::string::npos);
}

TEST(CliBasics, UnknownSubcommandFails) {
  const CliResult r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown subcommand"), std::string::npos);
}

TEST(CliBasics, ParsePolicyNames) {
  EXPECT_EQ(parse_policy("LL"), core::PolicyKind::LingerLonger);
  EXPECT_EQ(parse_policy("LF"), core::PolicyKind::LingerForever);
  EXPECT_EQ(parse_policy("IE"), core::PolicyKind::ImmediateEviction);
  EXPECT_EQ(parse_policy("PM"), core::PolicyKind::PauseAndMigrate);
  EXPECT_EQ(parse_policy("LL-oracle"), core::PolicyKind::OracleLinger);
  EXPECT_FALSE(parse_policy("condor").has_value());
}

TEST(CliBasics, ParseWidthPolicyNames) {
  EXPECT_EQ(parse_width_policy("reconfigure"),
            parallel::WidthPolicy::Reconfigure);
  EXPECT_EQ(parse_width_policy("fixed-linger"),
            parallel::WidthPolicy::FixedLinger);
  EXPECT_EQ(parse_width_policy("hybrid"), parallel::WidthPolicy::Hybrid);
  EXPECT_FALSE(parse_width_policy("wide").has_value());
}

TEST_F(CliTest, TracesWritesFilesAndAnalyzeReadsThem) {
  const CliResult gen = run({"traces", "--machines=3", "--days=0.25",
                             "--out=" + path("pool"), "--seed=7"});
  ASSERT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("wrote 3 traces"), std::string::npos);
  EXPECT_TRUE(fs::exists(path("pool/machine0.coarse")));
  EXPECT_TRUE(fs::exists(path("pool/machine2.coarse")));

  const CliResult ana = run({"analyze", "--dir=" + path("pool")});
  ASSERT_EQ(ana.code, 0) << ana.err;
  EXPECT_NE(ana.out.find("non-idle fraction"), std::string::npos);
  EXPECT_NE(ana.out.find("traces"), std::string::npos);
}

TEST_F(CliTest, TracesRequiresOutDir) {
  const CliResult r = run({"traces", "--machines=2"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--out is required"), std::string::npos);
}

TEST_F(CliTest, AnalyzeFailsOnEmptyDir) {
  fs::create_directories(path("empty"));
  const CliResult r = run({"analyze", "--dir=" + path("empty")});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("no .coarse traces"), std::string::npos);
}

TEST_F(CliTest, FitProducesLoadableTable) {
  // Synthesize a dispatch trace at 40% and fit a table from it.
  const auto fine = workload::generate_fine_trace(
      workload::default_burst_table(), 0.4, 2000.0, rng::Stream(3));
  trace::save_fine(fine, path("dispatch.fine"));

  const CliResult r = run({"fit", "--fine=" + path("dispatch.fine"),
                           "--out=" + path("site.bursts")});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("fitted"), std::string::npos);

  const workload::BurstTable table = workload::load_table(path("site.bursts"));
  const auto truth = workload::default_burst_table().moments_at(0.4);
  EXPECT_NEAR(table.level(8).run_mean, truth.run_mean, truth.run_mean * 0.3);
}

TEST_F(CliTest, FitRequiresArguments) {
  const CliResult r = run({"fit"});
  EXPECT_EQ(r.code, 1);
}

TEST_F(CliTest, FitHonoursCustomWindow) {
  const auto fine = workload::generate_fine_trace(
      workload::default_burst_table(), 0.5, 1000.0, rng::Stream(4));
  trace::save_fine(fine, path("d.fine"));
  const CliResult r = run({"fit", "--fine=" + path("d.fine"),
                           "--out=" + path("w.bursts"), "--window=1.0"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NO_THROW((void)workload::load_table(path("w.bursts")));
}

TEST_F(CliTest, FitFailsOnMissingTrace) {
  const CliResult r = run({"fit", "--fine=" + path("nope.fine"),
                           "--out=" + path("x.bursts")});
  EXPECT_EQ(r.code, 1);
  EXPECT_FALSE(r.err.empty());
}

TEST_F(CliTest, UnknownFlagIsReportedNotCrashed) {
  const CliResult r = run({"cluster", "--frobnicate=1"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown flag"), std::string::npos);
}

TEST_F(CliTest, ClusterOpenRunReportsMetrics) {
  const CliResult r =
      run({"cluster", "--policy=LL", "--nodes=8", "--jobs=8", "--demand=60",
           "--machines=4", "--days=0.2", "--seed=5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("avg job"), std::string::npos);
  EXPECT_NE(r.out.find("family time"), std::string::npos);
  EXPECT_NE(r.out.find("LL"), std::string::npos);
}

TEST_F(CliTest, ClusterClosedRunReportsThroughput) {
  const CliResult r =
      run({"cluster", "--policy=IE", "--nodes=8", "--jobs=16", "--demand=120",
           "--machines=4", "--days=0.2", "--closed=600", "--seed=5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("throughput"), std::string::npos);
  EXPECT_NE(r.out.find("closed (600 s)"), std::string::npos);
}

TEST_F(CliTest, ClusterWritesJobLog) {
  const CliResult r =
      run({"cluster", "--policy=LL", "--nodes=4", "--jobs=4", "--demand=60",
           "--machines=2", "--days=0.2", "--job-log=" + path("jobs.csv")});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream log(path("jobs.csv"));
  ASSERT_TRUE(log.good());
  std::string header;
  std::getline(log, header);
  EXPECT_EQ(header, "job,time,state");
  std::string line;
  std::size_t lines = 0;
  bool saw_done = false;
  while (std::getline(log, line)) {
    ++lines;
    if (line.find(",done") != std::string::npos) saw_done = true;
  }
  EXPECT_GE(lines, 8u);  // 4 jobs x (submit + >= 1 transition)
  EXPECT_TRUE(saw_done);
}

TEST_F(CliTest, ClusterRejectsUnknownPolicy) {
  const CliResult r = run({"cluster", "--policy=condor"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown policy"), std::string::npos);
}

TEST_F(CliTest, ClusterUsesTraceDirectory) {
  ASSERT_EQ(run({"traces", "--machines=2", "--days=0.25",
                 "--out=" + path("pool")})
                .code,
            0);
  const CliResult r =
      run({"cluster", "--policy=LF", "--nodes=4", "--jobs=4", "--demand=60",
           "--traces=" + path("pool"), "--seed=5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("LF"), std::string::npos);
}

TEST_F(CliTest, ClusterAcceptsCustomBurstTable) {
  workload::save_table(workload::default_burst_table(), path("t.bursts"));
  const CliResult r =
      run({"cluster", "--policy=LL", "--nodes=4", "--jobs=4", "--demand=60",
           "--machines=2", "--days=0.2", "--burst-table=" + path("t.bursts")});
  ASSERT_EQ(r.code, 0) << r.err;
}

TEST_F(CliTest, ParallelRunReportsThroughput) {
  const CliResult r =
      run({"parallel", "--policy=hybrid", "--nodes=8", "--jobs=2",
           "--work=40", "--duration=600", "--machines=4", "--days=0.2",
           "--seed=5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("work delivered"), std::string::npos);
  EXPECT_NE(r.out.find("hybrid"), std::string::npos);
}

TEST_F(CliTest, ParallelRejectsUnknownPolicy) {
  const CliResult r = run({"parallel", "--policy=wide"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown policy"), std::string::npos);
}

TEST_F(CliTest, ClusterReplicationsReportCi) {
  const CliResult r =
      run({"cluster", "--policy=LL", "--nodes=8", "--jobs=8", "--demand=60",
           "--machines=4", "--days=0.2", "--seed=5", "--reps=3",
           "--workers=2"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("replications"), std::string::npos);
  EXPECT_NE(r.out.find("avg job"), std::string::npos);
  EXPECT_NE(r.out.find("±"), std::string::npos);
}

TEST_F(CliTest, ClusterJsonEmitsSweep) {
  const CliResult r =
      run({"cluster", "--policy=LL", "--nodes=8", "--jobs=8", "--demand=60",
           "--machines=4", "--days=0.2", "--seed=5", "--json"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.front(), '{');
  EXPECT_NE(r.out.find("\"avg_job\""), std::string::npos);
  EXPECT_NE(r.out.find("\"summary\""), std::string::npos);
}

TEST_F(CliTest, BenchListShowsRegisteredBenches) {
  const CliResult r = run({"bench", "--list"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("fig07"), std::string::npos);
  EXPECT_NE(r.out.find("fig11"), std::string::npos);
  EXPECT_NE(r.out.find("abl_pause_time"), std::string::npos);
}

TEST_F(CliTest, BenchUnknownNameFails) {
  const CliResult r = run({"bench", "nonesuch"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown bench"), std::string::npos);
}

TEST_F(CliTest, BenchFig09SmokeRun) {
  const CliResult r = run({"bench", "fig09", "--phases=3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("slowdown"), std::string::npos);
}

TEST_F(CliTest, BenchThreadCountInvariance) {
  const std::vector<std::string> base = {"bench",     "fig09", "--phases=3",
                                         "--reps=2",  "--json"};
  auto with_jobs = [&base](const std::string& jobs) {
    std::vector<std::string> args = base;
    args.push_back("--jobs=" + jobs);
    return args;
  };
  const CliResult one = run(with_jobs("1"));
  ASSERT_EQ(one.code, 0) << one.err;
  EXPECT_EQ(one.out, run(with_jobs("4")).out);
  EXPECT_EQ(one.out, run(with_jobs("16")).out);
}

TEST_F(CliTest, FaultsPrintsTimelineAndGoodput) {
  const CliResult r =
      run({"faults", "--policy=LL", "--nodes=4", "--jobs=6", "--demand=120",
           "--mtbf=600", "--downtime=60", "--checkpoint=120", "--machines=2",
           "--days=0.2", "--seed=5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("compiled fault timeline"), std::string::npos);
  EXPECT_NE(r.out.find("crash"), std::string::npos);
  EXPECT_NE(r.out.find("goodput"), std::string::npos);
  EXPECT_NE(r.out.find("work lost"), std::string::npos);
}

TEST_F(CliTest, FaultsEmptyPlanIsBaseline) {
  const CliResult r =
      run({"faults", "--policy=LL", "--nodes=4", "--jobs=4", "--demand=60",
           "--mtbf=0", "--drop=0", "--checkpoint=0", "--machines=2",
           "--days=0.2", "--seed=5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("fault plan is empty"), std::string::npos);
  // Fault-free: identity metrics.
  EXPECT_NE(r.out.find("goodput"), std::string::npos);
  EXPECT_NE(r.out.find("100.00%"), std::string::npos);
}

TEST_F(CliTest, FaultsWritesManifestWithGoodput) {
  const CliResult r =
      run({"faults", "--policy=IE", "--nodes=4", "--jobs=4", "--demand=60",
           "--mtbf=300", "--machines=2", "--days=0.2", "--seed=6",
           "--metrics-out=" + path("faults.json")});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream in(path("faults.json"));
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"tool\": \"llsim faults\""), std::string::npos);
  EXPECT_NE(json.find("\"goodput\""), std::string::npos);
  EXPECT_NE(json.find("\"work_lost\""), std::string::npos);
  EXPECT_NE(json.find("fault.crashes"), std::string::npos);
}

TEST_F(CliTest, FaultsDeterministicAcrossInvocations) {
  const std::vector<std::string> args = {
      "faults",      "--policy=LL",  "--nodes=4",  "--jobs=6",
      "--demand=90", "--mtbf=400",   "--drop=0.2", "--checkpoint=60",
      "--machines=2", "--days=0.2",  "--seed=9"};
  EXPECT_EQ(run(args).out, run(args).out);
}

TEST_F(CliTest, FaultsRejectsUnknownPolicy) {
  const CliResult r = run({"faults", "--policy=condor"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown policy"), std::string::npos);
}

TEST_F(CliTest, TraceScenarioWritesValidChromeJson) {
  const std::string trace_path = path("scenario.json");
  const CliResult r =
      run({"trace", "--scenario=cluster-open-ll", "--out=" + trace_path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("digest"), std::string::npos);
  EXPECT_NE(r.out.find("wrote"), std::string::npos);

  std::ifstream file(trace_path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto doc = util::json::parse(buffer.str());
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind(), util::json::Kind::kArray);
  EXPECT_GT(events->as_array().size(), 3u);  // metadata + fire spans
}

TEST_F(CliTest, TraceSweepCoversAllInstrumentedLayers) {
  const std::string trace_path = path("sweep.json");
  const std::string manifest_path = path("manifest.json");
  const CliResult r = run({"trace", "--policy=LL", "--nodes=8", "--jobs=8",
                           "--demand=60", "--machines=4", "--days=0.2",
                           "--reps=2", "--workers=2", "--seed=11",
                           "--out=" + trace_path,
                           "--metrics-out=" + manifest_path});
  ASSERT_EQ(r.code, 0) << r.err;

  std::ifstream file(trace_path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  // DES fire spans, engine cell spans, and runner batch spans all present.
  EXPECT_NE(text.find("fire:"), std::string::npos);
  EXPECT_NE(text.find("cell:"), std::string::npos);
  EXPECT_NE(text.find("runner.batch"), std::string::npos);

  std::ifstream mf(manifest_path);
  ASSERT_TRUE(mf.good());
  std::stringstream mbuf;
  mbuf << mf.rdbuf();
  const auto doc = util::json::parse(mbuf.str());
  const auto* trace = doc.find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_GT(trace->find("tracer_recorded")->as_number(), 0.0);
}

TEST_F(CliTest, TraceRequiresOut) {
  const CliResult r = run({"trace", "--scenario=cluster-open-ll"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--out"), std::string::npos);
}

TEST_F(CliTest, BenchReportWritesSchemaShapedJson) {
  const std::string report_path = path("bench.json");
  const CliResult r = run({"bench", "--report", "--out=" + report_path,
                           "--report-scale=0.02", "--workers=2"});
  ASSERT_EQ(r.code, 0) << r.err;

  std::ifstream file(report_path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto doc = util::json::parse(buffer.str());
  EXPECT_EQ(doc.find("tool")->as_string(), "llsim bench --report");
  ASSERT_EQ(doc.find("version")->kind(), util::json::Kind::kString);
  ASSERT_EQ(doc.find("seed")->kind(), util::json::Kind::kNumber);
  ASSERT_EQ(doc.find("config")->kind(), util::json::Kind::kObject);
  const auto* entries = doc.find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->kind(), util::json::Kind::kArray);
  ASSERT_EQ(entries->as_array().size(), 6u);
  std::vector<std::string> names;
  for (const auto& e : entries->as_array()) {
    names.push_back(e.find("name")->as_string());
    EXPECT_GE(e.find("wall_s")->as_number(), 0.0);
    EXPECT_GT(e.find("items")->as_number(), 0.0);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"micro_steal", "micro_obs",
                                             "micro_des", "micro_runner",
                                             "fig07", "micro_shard"}));
}

TEST_F(CliTest, BenchReportCheckPassesAgainstItself) {
  const std::string baseline = path("baseline.json");
  ASSERT_EQ(run({"bench", "--report", "--out=" + baseline,
                 "--report-scale=0.02", "--workers=2"})
                .code,
            0);
  const CliResult r =
      run({"bench", "--report", "--out=" + path("again.json"),
           "--report-scale=0.02", "--workers=2", "--check=" + baseline,
           "--tolerance=1000"});
  ASSERT_EQ(r.code, 0) << r.out << r.err;
  EXPECT_NE(r.out.find("perf-report check: ok"), std::string::npos);
}

TEST_F(CliTest, ProfileReportsWallClockTotals) {
  const CliResult r =
      run({"profile", "--policy=LL", "--nodes=4", "--jobs=6", "--demand=60",
           "--machines=2", "--days=0.2", "--seed=5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("run total (ms)"), std::string::npos);
  EXPECT_NE(r.out.find("event callbacks (ms)"), std::string::npos);
  EXPECT_NE(r.out.find("callback share"), std::string::npos);
}

TEST_F(CliTest, DeterministicAcrossInvocations) {
  const std::vector<std::string> args = {
      "cluster", "--policy=LL",     "--nodes=8",  "--jobs=8",
      "--demand=60", "--machines=4", "--days=0.2", "--seed=11"};
  EXPECT_EQ(run(args).out, run(args).out);
}

}  // namespace
}  // namespace ll::cli
