/// Randomized differential test of the DES engine against a trivially
/// correct reference model (sorted multiset of (time, id) pairs with a
/// cancellation set). Any divergence in firing order, count, or clock is a
/// scheduler bug.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "des/simulation.hpp"
#include "rng/rng.hpp"

namespace ll::des {
namespace {

struct ReferenceModel {
  // (time, id) ordered exactly like the engine's tie-break rule.
  std::map<std::pair<double, EventId>, bool> events;  // value: cancelled?

  void schedule(double t, EventId id) { events[{t, id}] = false; }
  bool cancel(EventId id) {
    for (auto& [key, cancelled] : events) {
      if (key.second == id && !cancelled) {
        cancelled = true;
        return true;
      }
    }
    return false;
  }
  /// Pops fired events up to and including `horizon`, in order.
  std::vector<EventId> run_until(double horizon) {
    std::vector<EventId> fired;
    auto it = events.begin();
    while (it != events.end() && it->first.first <= horizon) {
      if (!it->second) fired.push_back(it->first.second);
      it = events.erase(it);
    }
    return fired;
  }
};

TEST(DesFuzz, MatchesReferenceModelAcrossRandomOperations) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    rng::Stream rng(seed);
    Simulation sim;
    ReferenceModel ref;
    std::vector<EventId> fired;
    std::vector<EventId> live;  // ids that may still be pending

    for (int step = 0; step < 400; ++step) {
      const double roll = rng.uniform01();
      if (roll < 0.55) {
        // Schedule at a random future time (coarse grid to force ties).
        // The callback records its own id via a shared box filled in after
        // scheduling.
        const double t =
            sim.now() + static_cast<double>(rng.uniform_index(50)) * 0.5;
        auto id_box = std::make_shared<EventId>(kNoEvent);
        const EventId id = sim.schedule_at(
            t, [&fired, id_box] { fired.push_back(*id_box); });
        *id_box = id;
        ref.schedule(t, id);
        live.push_back(id);
      } else if (roll < 0.75 && !live.empty()) {
        const EventId victim =
            live[rng.uniform_index(live.size())];
        const bool engine_ok = sim.cancel(victim);
        const bool ref_ok = ref.cancel(victim);
        EXPECT_EQ(engine_ok, ref_ok) << "seed=" << seed << " step=" << step;
      } else {
        // Advance to a random horizon and compare fired sequences.
        const double horizon =
            sim.now() + static_cast<double>(rng.uniform_index(30)) * 0.5;
        fired.clear();
        sim.run_until(horizon);
        const std::vector<EventId> expected = ref.run_until(horizon);
        ASSERT_EQ(fired, expected) << "seed=" << seed << " step=" << step;
        EXPECT_DOUBLE_EQ(sim.now(), horizon);
      }
    }
    // Drain both completely.
    fired.clear();
    sim.run();
    const std::vector<EventId> expected = ref.run_until(1e18);
    EXPECT_EQ(fired, expected) << "seed=" << seed;
    EXPECT_EQ(sim.pending_count(), 0u);
  }
}

TEST(DesFuzz, HeavyCancellationLeavesQueueConsistent) {
  rng::Stream rng(99);
  Simulation sim;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(sim.schedule_at(
        static_cast<double>(rng.uniform_index(1000)), [&fired] { ++fired; }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 3 != 0 && sim.cancel(ids[i])) ++cancelled;
  }
  sim.run();
  EXPECT_EQ(fired + cancelled, 5000);
  EXPECT_EQ(sim.pending_count(), 0u);
}

}  // namespace
}  // namespace ll::des
