#include "des/simulation.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace ll::des {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Simulation, FiresInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, TiesFireInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, ScheduleInUsesRelativeTime) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulation, RejectsPastAndInvalidTimes) {
  Simulation sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW((void)(sim.schedule_at(5.0, [] {})), std::invalid_argument);
  EXPECT_THROW((void)(sim.schedule_in(-1.0, [] {})), std::invalid_argument);
  EXPECT_THROW(
      sim.schedule_at(std::numeric_limits<double>::quiet_NaN(), [] {}),
      std::invalid_argument);
  EXPECT_THROW(
      sim.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
      std::invalid_argument);
}

TEST(Simulation, RejectsEmptyCallback) {
  Simulation sim;
  EXPECT_THROW(sim.schedule_at(1.0, Simulation::Callback{}),
               std::invalid_argument);
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelIsIdempotent) {
  Simulation sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(kNoEvent));
}

TEST(Simulation, CancelFiredEventIsNoOp) {
  Simulation sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulation, PendingCountTracksCancellation) {
  Simulation sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(Simulation, StepFiresOneEvent) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulation sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  const std::size_t n = sim.run_until(2.5);
  EXPECT_EQ(n, 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending_count(), 2u);
}

TEST(Simulation, RunUntilIncludesEventsAtHorizon) {
  Simulation sim;
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulation, RunUntilEmptyQueueStillAdvances) {
  Simulation sim;
  sim.run_until(7.0);
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);
}

TEST(Simulation, RunUntilRejectsBackwardHorizon) {
  Simulation sim;
  sim.run_until(5.0);
  EXPECT_THROW((void)(sim.run_until(4.0)), std::invalid_argument);
}

TEST(Simulation, RunUntilFiresExactHorizonSelfSchedules) {
  // Pinned edge case: a callback firing at exactly the horizon may schedule
  // further events at exactly the horizon; they fire within the SAME
  // run_until call (the queue is re-examined after every fire) and the
  // clock still lands on exactly the horizon.
  Simulation sim;
  std::vector<int> fired;
  sim.schedule_at(5.0, [&] {
    fired.push_back(1);
    sim.schedule_at(5.0, [&] {
      fired.push_back(2);
      sim.schedule_at(5.0, [&] { fired.push_back(3); });
    });
  });
  const std::size_t n = sim.run_until(5.0);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Simulation, RunUntilHorizonEqualsNowFiresDueEvents) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(0.0, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(0.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 0.0);
  // And again: horizon == now() with an empty queue is a valid no-op.
  EXPECT_EQ(sim.run_until(0.0), 0u);
}

TEST(Simulation, CancelStormShrinksCallbackTable) {
  // A cancel storm (the recheck/completion pattern in the cluster sim
  // schedules tentative completions and cancels most of them) used to leave
  // the callback table at its peak bucket count forever; erase() never
  // shrinks. The table must rehash down once occupancy collapses.
  Simulation sim;
  std::vector<EventId> ids;
  ids.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    ids.push_back(sim.schedule_at(1e6 + i, [] {}));
  }
  const std::size_t peak = sim.callback_buckets();
  EXPECT_GE(peak, 100000u / 8);  // sanity: the table actually grew
  for (std::size_t i = 10; i < ids.size(); ++i) sim.cancel(ids[i]);
  EXPECT_EQ(sim.pending_count(), 10u);
  EXPECT_LT(sim.callback_buckets(), 1024u);
  EXPECT_LT(sim.callback_buckets(), peak / 64);
  // The surviving events still fire normally after the rehash.
  EXPECT_EQ(sim.run(), 10u);
}

TEST(Simulation, DrainByFiringAlsoShrinksCallbackTable) {
  Simulation sim;
  for (int i = 0; i < 100000; ++i) {
    sim.schedule_at(static_cast<double>(i), [] {});
  }
  const std::size_t peak = sim.callback_buckets();
  sim.run();
  EXPECT_LT(sim.callback_buckets(), peak);
  EXPECT_LT(sim.callback_buckets(), 1024u);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

TEST(Simulation, EventsCanCancelLaterEvents) {
  Simulation sim;
  bool fired = false;
  const EventId victim = sim.schedule_at(2.0, [&] { fired = true; });
  sim.schedule_at(1.0, [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, EventsFiredCounter) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(Simulation, ManyEventsStressOrdering) {
  Simulation sim;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 20000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    sim.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
}

TEST(Simulation, ZeroDelaySelfScheduleFiresAtSameTime) {
  Simulation sim;
  std::vector<double> times;
  sim.schedule_at(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(0.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
}

TEST(Simulation, RunUntilRejectsNonFiniteHorizon) {
  Simulation sim;
  EXPECT_THROW((void)sim.run_until(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW((void)sim.run_until(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW((void)sim.run_until(-std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  // Bad horizons leave the clock and queue untouched.
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.run_until(1.0), 0u);
}

TEST(Simulation, ScheduleInRejectsNonFiniteDelay) {
  Simulation sim;
  EXPECT_THROW(
      (void)sim.schedule_in(std::numeric_limits<double>::quiet_NaN(), [] {}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)sim.schedule_in(std::numeric_limits<double>::infinity(), [] {}),
      std::invalid_argument);
}

TEST(Simulation, CountersPartitionEveryEvent) {
  Simulation sim;
  const EventId doomed = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.schedule_at(3.0, [] {});
  sim.cancel(doomed);
  sim.run_until(2.5);
  EXPECT_EQ(sim.events_scheduled(), 3u);
  EXPECT_EQ(sim.events_fired(), 1u);
  EXPECT_EQ(sim.events_cancelled(), 1u);
  EXPECT_EQ(sim.pending_count(), 1u);
  EXPECT_EQ(sim.events_scheduled(),
            sim.events_fired() + sim.events_cancelled() + sim.pending_count());
}

// Recording observer used by the hook tests below.
struct RecordingObserver final : SimObserver {
  struct Rec {
    char kind;  // 's' schedule, 'f' fire, 'c' cancel
    double time;
    EventId id;
    std::uint64_t tag;
  };
  std::vector<Rec> recs;
  void on_schedule(double when, EventId id, std::uint64_t tag) override {
    recs.push_back({'s', when, id, tag});
  }
  void on_fire(double time, EventId id, std::uint64_t tag) override {
    recs.push_back({'f', time, id, tag});
  }
  void on_cancel(EventId id, std::uint64_t tag) override {
    recs.push_back({'c', 0.0, id, tag});
  }
};

TEST(SimulationObserver, SeesScheduleFireAndCancelWithTags) {
  Simulation sim;
  RecordingObserver obs;
  EXPECT_EQ(sim.set_observer(&obs), nullptr);
  EXPECT_EQ(sim.observer(), &obs);

  const EventId kept = sim.schedule_at(1.0, [] {}, 7);
  const EventId doomed = sim.schedule_at(2.0, [] {}, 9);
  EXPECT_TRUE(sim.cancel(doomed));
  sim.run();

  ASSERT_EQ(obs.recs.size(), 4u);
  EXPECT_EQ(obs.recs[0].kind, 's');
  EXPECT_EQ(obs.recs[0].id, kept);
  EXPECT_EQ(obs.recs[0].tag, 7u);
  EXPECT_DOUBLE_EQ(obs.recs[0].time, 1.0);
  EXPECT_EQ(obs.recs[1].kind, 's');
  EXPECT_EQ(obs.recs[1].tag, 9u);
  EXPECT_EQ(obs.recs[2].kind, 'c');
  EXPECT_EQ(obs.recs[2].id, doomed);
  EXPECT_EQ(obs.recs[2].tag, 9u);
  EXPECT_EQ(obs.recs[3].kind, 'f');
  EXPECT_EQ(obs.recs[3].id, kept);
  EXPECT_EQ(obs.recs[3].tag, 7u);
}

TEST(SimulationObserver, UntaggedEventsReportTagZero) {
  Simulation sim;
  RecordingObserver obs;
  sim.set_observer(&obs);
  sim.schedule_at(1.0, [] {});
  sim.run();
  ASSERT_EQ(obs.recs.size(), 2u);
  EXPECT_EQ(obs.recs[0].tag, 0u);
  EXPECT_EQ(obs.recs[1].tag, 0u);
}

TEST(SimulationObserver, SetObserverReturnsPreviousAndDetaches) {
  Simulation sim;
  RecordingObserver first;
  RecordingObserver second;
  sim.set_observer(&first);
  EXPECT_EQ(sim.set_observer(&second), &first);
  sim.schedule_at(1.0, [] {});
  EXPECT_EQ(sim.set_observer(nullptr), &second);
  sim.run();  // no observer attached: the fire goes unrecorded
  EXPECT_TRUE(first.recs.empty());
  ASSERT_EQ(second.recs.size(), 1u);
  EXPECT_EQ(second.recs[0].kind, 's');
}

TEST(SimulationObserver, FireNotifiedBeforeCallbackRuns) {
  Simulation sim;
  RecordingObserver obs;
  sim.set_observer(&obs);
  std::size_t seen_at_callback = 0;
  sim.schedule_at(1.0, [&] { seen_at_callback = obs.recs.size(); });
  sim.run();
  // schedule + fire both already recorded when the callback executes.
  EXPECT_EQ(seen_at_callback, 2u);
}

TEST(SimulationObserver, CancelOfFiredOrUnknownIdDoesNotNotify) {
  Simulation sim;
  RecordingObserver obs;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  sim.set_observer(&obs);
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(kNoEvent));
  EXPECT_TRUE(obs.recs.empty());
}

TEST(SimulationObserver, SelfSchedulingCallbacksAreObserved) {
  Simulation sim;
  RecordingObserver obs;
  sim.set_observer(&obs);
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 4) sim.schedule_in(1.0, chain, static_cast<std::uint64_t>(depth));
  };
  sim.schedule_at(0.0, chain, 99);
  sim.run();
  std::size_t schedules = 0;
  std::size_t fires = 0;
  for (const auto& r : obs.recs) {
    if (r.kind == 's') ++schedules;
    if (r.kind == 'f') ++fires;
  }
  EXPECT_EQ(schedules, 4u);
  EXPECT_EQ(fires, 4u);
}

}  // namespace
}  // namespace ll::des
