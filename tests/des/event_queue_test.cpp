/// Calendar-queue edge cases and heap/calendar equivalence.
///
/// The calendar backend must be observationally identical to the heap
/// backend: same fire sequence (time, id, tag), same throw behavior, same
/// counters — only throughput may differ. These tests pin the edge cases
/// where calendar queues classically go wrong: equal-timestamp ordering,
/// events pushed into a bucket "behind" the scan cursor, cancellations of
/// such events, and mid-run bucket resizes.

#include "des/event_queue.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "des/simulation.hpp"
#include "rng/rng.hpp"

namespace ll::des {
namespace {

Simulation::Options with_backend(QueueBackend backend) {
  Simulation::Options options;
  options.queue = backend;
  return options;
}

TEST(QueueBackendName, ParseAndPrintRoundTrip) {
  EXPECT_EQ(parse_queue_backend("heap"), QueueBackend::kHeap);
  EXPECT_EQ(parse_queue_backend("calendar"), QueueBackend::kCalendar);
  EXPECT_EQ(parse_queue_backend("splay"), std::nullopt);
  EXPECT_EQ(parse_queue_backend(""), std::nullopt);
  EXPECT_EQ(to_string(QueueBackend::kHeap), "heap");
  EXPECT_EQ(to_string(QueueBackend::kCalendar), "calendar");
}

TEST(QueueBackendName, SimulationReportsItsBackend) {
  Simulation heap;
  EXPECT_EQ(heap.queue_backend(), QueueBackend::kHeap);
  Simulation calendar(with_backend(QueueBackend::kCalendar));
  EXPECT_EQ(calendar.queue_backend(), QueueBackend::kCalendar);
}

// Records the full fire sequence of a simulation run, (time, id)-tagged.
struct FireLog final : SimObserver {
  struct Rec {
    double time;
    EventId id;
    std::uint64_t tag;
    bool operator==(const Rec&) const = default;
  };
  std::vector<Rec> recs;
  void on_fire(double time, EventId id, std::uint64_t tag) override {
    recs.push_back({time, id, tag});
  }
};

// Replays one deterministic random schedule/cancel/advance script against a
// backend and returns the complete fire sequence.
std::vector<FireLog::Rec> replay_script(QueueBackend backend,
                                        std::uint64_t seed) {
  Simulation sim(with_backend(backend));
  FireLog log;
  sim.set_observer(&log);
  rng::Stream rng(seed);
  std::vector<EventId> live;
  for (int op = 0; op < 3000; ++op) {
    const double roll = rng.uniform01();
    if (roll < 0.6) {
      // Coarse time grid (quarter steps over a short range) forces heavy
      // timestamp collisions — the equal-time FIFO tiebreak must hold.
      const double t =
          sim.now() + static_cast<double>(rng.uniform_index(40)) * 0.25;
      live.push_back(sim.schedule_at(t, [] {}, rng.uniform_index(5)));
    } else if (roll < 0.75 && !live.empty()) {
      sim.cancel(live[rng.uniform_index(live.size())]);
    } else {
      sim.run_until(sim.now() +
                    static_cast<double>(rng.uniform_index(20)) * 0.25);
    }
  }
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(sim.events_scheduled(),
            sim.events_fired() + sim.events_cancelled());
  return log.recs;
}

TEST(CalendarQueue, PropertyFullFireSequenceMatchesHeap) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto heap = replay_script(QueueBackend::kHeap, seed);
    const auto calendar = replay_script(QueueBackend::kCalendar, seed);
    ASSERT_EQ(heap, calendar) << "backends diverged at seed " << seed;
  }
}

TEST(CalendarQueue, EqualTimestampsFireInScheduleOrder) {
  Simulation sim(with_backend(QueueBackend::kCalendar));
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(CalendarQueue, PushIntoPastBucketStillFiresFirst) {
  // Settling the scan cursor on a far-future day and then pushing an
  // earlier event exercises the cursor rewind: without it the queue would
  // lap the whole calendar (or worse, fire out of order).
  Simulation sim(with_backend(QueueBackend::kCalendar));
  std::vector<double> fired;
  sim.schedule_at(1000.0, [&] { fired.push_back(sim.now()); });
  sim.run_until(900.0);  // peeks: cursor advances toward day(1000)
  sim.schedule_at(950.0, [&] { fired.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<double>{950.0, 1000.0}));
}

TEST(CalendarQueue, CancelOfPendingInPastBucketIsHonored) {
  Simulation sim(with_backend(QueueBackend::kCalendar));
  bool late_fired = false;
  bool victim_fired = false;
  sim.schedule_at(1000.0, [&] { late_fired = true; });
  sim.run_until(900.0);
  const EventId victim = sim.schedule_at(950.0, [&] { victim_fired = true; });
  EXPECT_TRUE(sim.pending(victim));
  EXPECT_TRUE(sim.cancel(victim));
  sim.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_TRUE(late_fired);
  EXPECT_EQ(sim.events_cancelled(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 1000.0);
}

TEST(CalendarQueue, NanAndInfRejectionMatchesHeap) {
  for (const QueueBackend backend :
       {QueueBackend::kHeap, QueueBackend::kCalendar}) {
    Simulation sim(with_backend(backend));
    EXPECT_THROW(
        sim.schedule_at(std::numeric_limits<double>::quiet_NaN(), [] {}),
        std::invalid_argument);
    EXPECT_THROW(
        sim.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
        std::invalid_argument);
    EXPECT_THROW(
        sim.schedule_at(-std::numeric_limits<double>::infinity(), [] {}),
        std::invalid_argument);
    EXPECT_THROW(
        (void)sim.schedule_in(std::numeric_limits<double>::quiet_NaN(), [] {}),
        std::invalid_argument);
    EXPECT_THROW(
        (void)sim.run_until(std::numeric_limits<double>::quiet_NaN()),
        std::invalid_argument);
    // Rejection happens before the queue sees anything: state is untouched.
    EXPECT_EQ(sim.events_scheduled(), 0u);
    EXPECT_EQ(sim.pending_count(), 0u);
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  }
}

TEST(CalendarQueue, ResizesWhilePopulationGrowsAndDrains) {
  CalendarEventQueue q;
  const std::size_t initial = q.bucket_count();
  EXPECT_EQ(initial, CalendarEventQueue::kMinBuckets);
  for (std::uint64_t id = 1; id <= 10000; ++id) {
    q.push(static_cast<double>(id % 997), id);
  }
  EXPECT_GT(q.bucket_count(), initial);  // grew with the population
  const std::size_t peak_buckets = q.bucket_count();
  double last = -1.0;
  std::uint64_t last_id = 0;
  while (const QueuedEvent* top = q.peek()) {
    // Strict (time, id) order across every grow/shrink boundary.
    ASSERT_TRUE(top->time > last || (top->time == last && top->id > last_id));
    last = top->time;
    last_id = top->id;
    q.pop();
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_LT(q.bucket_count(), peak_buckets);  // shrank back on the drain
  EXPECT_EQ(q.bucket_count(), CalendarEventQueue::kMinBuckets);
}

TEST(CalendarQueue, BucketResizeMidRunIsDeterministic) {
  // Two identical runs through grow and shrink thresholds must produce the
  // same fire sequence AND the same final structure: resize decisions are a
  // pure function of the operation sequence.
  auto run_once = [](QueueBackend backend) {
    Simulation sim(with_backend(backend));
    FireLog log;
    sim.set_observer(&log);
    rng::Stream rng(7);
    std::vector<EventId> ids;
    // Grow: a burst far above the 2x-buckets threshold.
    for (int i = 0; i < 5000; ++i) {
      ids.push_back(sim.schedule_at(
          static_cast<double>(rng.uniform_index(2000)) * 0.5, [] {}));
    }
    // Drain halfway (shrink threshold crossings), then burst again.
    sim.run_until(500.0);
    for (int i = 0; i < 2000; ++i) {
      ids.push_back(sim.schedule_at(
          500.0 + static_cast<double>(rng.uniform_index(1000)) * 0.25, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) sim.cancel(ids[i]);
    sim.run();
    return log.recs;
  };
  const auto first = run_once(QueueBackend::kCalendar);
  const auto second = run_once(QueueBackend::kCalendar);
  EXPECT_EQ(first, second);
  // And the heap backend agrees on the same script.
  EXPECT_EQ(run_once(QueueBackend::kHeap), first);
}

TEST(CalendarQueue, SparseFarFutureTailUsesDirectScanCorrectly) {
  // Events many calendar years apart force the full-lap fallback: the scan
  // gives up after one lap and teleports to the true minimum.
  Simulation sim(with_backend(QueueBackend::kCalendar));
  std::vector<double> fired;
  for (const double t : {1e6, 3.0, 7e4, 0.5, 42.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run();
  EXPECT_EQ(fired, (std::vector<double>{0.5, 3.0, 42.0, 7e4, 1e6}));
}

TEST(EventArena, PeakFootprintIsPinnedAndPagesFreeOnDeath) {
  // Satellite regression: peak callback capacity for N pending events is
  // exactly ceil((N + 1) / page) pages — and collapses page-by-page as
  // events die, whether by firing or cancelling.
  constexpr std::size_t kPage = Simulation::kCallbackPageSlots;
  Simulation sim;
  constexpr int kEvents = 100000;
  for (int i = 0; i < kEvents; ++i) {
    sim.schedule_at(static_cast<double>(i), [] {});
  }
  const std::size_t expected_pages = kEvents / kPage + 1;  // ids 1..N
  EXPECT_EQ(sim.callback_buckets(), expected_pages * kPage);
  sim.run();
  EXPECT_EQ(sim.callback_buckets(), 0u);
}

TEST(EventArena, SteadyChurnNeverAccumulatesPages) {
  // Mass fires interleaved with fresh schedules: the footprint must track
  // the (small) pending population, not the (huge) total event count.
  Simulation sim;
  std::size_t peak = 0;
  for (int wave = 0; wave < 200; ++wave) {
    for (int i = 0; i < 500; ++i) {
      sim.schedule_in(static_cast<double>(i) * 1e-3, [] {});
    }
    sim.run();
    peak = std::max(peak, sim.callback_buckets());
  }
  EXPECT_EQ(sim.events_fired(), 100000u);
  // 500 pending events span at most two pages, plus one page of slack for
  // a wave straddling a boundary.
  EXPECT_LE(peak, 3 * Simulation::kCallbackPageSlots);
  EXPECT_EQ(sim.callback_buckets(), 0u);
}

}  // namespace
}  // namespace ll::des
