/// End-to-end integration tests: the full paper pipeline, from synthetic
/// trace generation through fitting, cluster scheduling, and the parallel
/// co-simulation, checked against the paper's headline claims (as shapes,
/// not absolute numbers).

#include <gtest/gtest.h>

#include <cmath>

#include "core/linger.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "cluster/experiment.hpp"
#include "parallel/reconfig.hpp"
#include "workload/fine_generator.hpp"
#include "workload/fit.hpp"

namespace ll {
namespace {

// Shared fixture: one realistic trace pool for the whole suite (generation
// is the expensive part).
class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace::CoarseGenConfig gen;
    gen.duration = 8 * 3600.0;  // 8 working hours per machine
    gen.start_hour = 9.0;
    pool_ = new std::vector<trace::CoarseTrace>(
        trace::generate_machine_pool(gen, 16, rng::Stream(2024)));
  }
  static void TearDownTestSuite() {
    delete pool_;
    pool_ = nullptr;
  }

  static cluster::ClusterReport closed_run(core::PolicyKind policy,
                                           std::size_t jobs, double demand,
                                           double duration) {
    cluster::ExperimentConfig cfg;
    cfg.cluster.node_count = 16;
    cfg.cluster.policy = policy;
    cfg.workload = cluster::WorkloadSpec{jobs, demand};
    cfg.seed = 7;
    return cluster::run_closed(cfg, *pool_, workload::default_burst_table(),
                               duration);
  }

  static std::vector<trace::CoarseTrace>* pool_;
};

std::vector<trace::CoarseTrace>* EndToEnd::pool_ = nullptr;

TEST_F(EndToEnd, Figure2Pipeline_FittedH2MatchesEmpiricalBursts) {
  // Generate a dispatch trace at fixed utilization, bucket and re-fit it,
  // and verify the fitted H2 CDF tracks the empirical CDF (the paper's
  // "curves almost exactly match").
  const auto& truth = workload::default_burst_table();
  for (double u : {0.1, 0.5}) {
    const auto fine =
        workload::generate_fine_trace(truth, u, 20000.0, rng::Stream(31));
    const auto analysis = workload::analyze_fine_trace(fine);
    // Pool the samples near the target level, as the paper's histograms do.
    std::vector<double> run_samples;
    for (std::size_t lvl = 0; lvl < workload::kUtilizationLevels; ++lvl) {
      const double lu = workload::BurstTable::level_utilization(lvl);
      if (std::abs(lu - u) <= 0.05 + 1e-9) {
        run_samples.insert(run_samples.end(), analysis.levels[lvl].run.begin(),
                           analysis.levels[lvl].run.end());
      }
    }
    ASSERT_GT(run_samples.size(), 1000u) << "u=" << u;
    stats::Summary m;
    for (double x : run_samples) m.add(x);
    const rng::HyperExp2 fitted = rng::fit_hyperexp2(
        m.mean(), std::max(m.variance(), m.mean() * m.mean() * 1.0001));
    const stats::EmpiricalCdf ecdf(run_samples);
    const double ks =
        ecdf.ks_distance([&fitted](double x) { return fitted.cdf(x); });
    EXPECT_LT(ks, 0.08) << "u=" << u;
  }
}

TEST_F(EndToEnd, Section42_LingerThroughputAdvantage) {
  // Paper Figure 7, workload-1 regime (demand exceeds idle capacity): the
  // lingering policies deliver substantially more throughput than the
  // eviction policies — the paper reports ~50-60%.
  const auto ll = closed_run(core::PolicyKind::LingerLonger, 32, 600.0, 1800.0);
  const auto lf = closed_run(core::PolicyKind::LingerForever, 32, 600.0, 1800.0);
  const auto ie = closed_run(core::PolicyKind::ImmediateEviction, 32, 600.0, 1800.0);
  const auto pm = closed_run(core::PolicyKind::PauseAndMigrate, 32, 600.0, 1800.0);

  EXPECT_GT(ll.throughput, ie.throughput * 1.25);
  EXPECT_GT(lf.throughput, pm.throughput * 1.25);
  // IE and PM are nearly interchangeable in the paper.
  EXPECT_NEAR(ie.throughput, pm.throughput, ie.throughput * 0.25);
}

TEST_F(EndToEnd, Section42_LightLoadEqualizesPolicies) {
  // Workload-2 regime: plenty of idle capacity, all policies similar.
  const auto ll = closed_run(core::PolicyKind::LingerLonger, 4, 1800.0, 1800.0);
  const auto ie = closed_run(core::PolicyKind::ImmediateEviction, 4, 1800.0, 1800.0);
  EXPECT_NEAR(ll.throughput, ie.throughput, ll.throughput * 0.15);
}

TEST_F(EndToEnd, Section42_ForegroundDelayUnderHalfPercent) {
  const auto ll = closed_run(core::PolicyKind::LingerLonger, 32, 600.0, 1800.0);
  EXPECT_LT(ll.foreground_delay, 0.005);
  const auto lf = closed_run(core::PolicyKind::LingerForever, 32, 600.0, 1800.0);
  EXPECT_LT(lf.foreground_delay, 0.005);
}

TEST_F(EndToEnd, OpenFamilyRun_LingerImprovesFamilyTime) {
  cluster::ExperimentConfig cfg;
  cfg.cluster.node_count = 16;
  cfg.workload = cluster::WorkloadSpec{32, 300.0};
  cfg.seed = 13;

  cfg.cluster.policy = core::PolicyKind::LingerLonger;
  const auto ll = cluster::run_open(cfg, *pool_, workload::default_burst_table());
  cfg.cluster.policy = core::PolicyKind::ImmediateEviction;
  const auto ie = cluster::run_open(cfg, *pool_, workload::default_burst_table());

  EXPECT_EQ(ll.completed, 32u);
  EXPECT_EQ(ie.completed, 32u);
  EXPECT_LT(ll.family_time, ie.family_time);
  EXPECT_LT(ll.avg_completion, ie.avg_completion);
  // Eviction-based jobs never linger; linger jobs rarely pause.
  EXPECT_DOUBLE_EQ(ie.avg_lingering, 0.0);
  EXPECT_GT(ll.avg_lingering, 0.0);
}

TEST_F(EndToEnd, Section5_LingerBeatsReconfigurationAtLightLoad) {
  // Paper conclusion: LL outperforms reconfiguration when local utilization
  // is <= 20%; reconfiguration wins at high utilization.
  parallel::ReconfigScenario s;
  s.cluster_nodes = 16;
  s.total_work = 19.2;
  s.bsp.granularity = 0.5;

  s.nonidle_util = 0.2;
  const double ll_light =
      parallel::ll_completion(s, 16, 12, workload::default_burst_table(),
                              rng::Stream(21));
  const double rec_light = parallel::reconfig_completion(
      s, 12, workload::default_burst_table(), rng::Stream(21));
  EXPECT_LT(ll_light, rec_light);

  s.nonidle_util = 0.8;
  const double ll_heavy =
      parallel::ll_completion(s, 16, 12, workload::default_burst_table(),
                              rng::Stream(22));
  const double rec_heavy = parallel::reconfig_completion(
      s, 12, workload::default_burst_table(), rng::Stream(22));
  EXPECT_GT(ll_heavy, rec_heavy);
}

TEST_F(EndToEnd, ReplicatedClusterComparisonIsStable) {
  // The LL > IE ordering must hold across independent replications, not
  // just one lucky seed.
  auto run_with = [&](core::PolicyKind policy, std::uint64_t seed) {
    cluster::ExperimentConfig cfg;
    cfg.cluster.node_count = 16;
    cfg.cluster.policy = policy;
    cfg.workload = cluster::WorkloadSpec{32, 300.0};
    cfg.seed = seed;
    return cluster::run_closed(cfg, *pool_, workload::default_burst_table(),
                               900.0);
  };
  const auto ll_reports =
      cluster::replicate(4, 100, [&](std::uint64_t seed) {
        return run_with(core::PolicyKind::LingerLonger, seed);
      });
  const auto ie_reports =
      cluster::replicate(4, 100, [&](std::uint64_t seed) {
        return run_with(core::PolicyKind::ImmediateEviction, seed);
      });
  const auto metric = [](const cluster::ClusterReport& r) {
    return r.throughput;
  };
  const auto ll_ci = cluster::summarize(ll_reports, metric);
  const auto ie_ci = cluster::summarize(ie_reports, metric);
  EXPECT_GT(ll_ci.lo(), ie_ci.hi());
}

}  // namespace
}  // namespace ll
