/// Cross-module property tests: physical invariants that must hold for
/// every policy on every (randomized) configuration. The capacity-bound
/// property caught a real modeling bug during development — these run the
/// whole policy matrix through randomized trace pools.

#include <gtest/gtest.h>

#include "cluster/experiment.hpp"
#include "core/linger.hpp"
#include "parallel/parallel_cluster.hpp"

namespace ll {
namespace {

constexpr core::PolicyKind kAllPolicies[] = {
    core::PolicyKind::LingerLonger, core::PolicyKind::LingerForever,
    core::PolicyKind::ImmediateEviction, core::PolicyKind::PauseAndMigrate,
    core::PolicyKind::OracleLinger};

/// Upper bound on foreign CPU the pool can physically deliver in [0, T]:
/// every node contributes at most (1 - u) per second.
double leftover_capacity(std::span<const trace::CoarseTrace> pool,
                         const std::vector<std::size_t>& assignment,
                         double horizon) {
  double total = 0.0;
  for (std::size_t pick : assignment) {
    const auto& t = pool[pick];
    for (double w = 0.0; w < horizon; w += t.period()) {
      total += (1.0 - t.sample_at(w).cpu) * std::min(t.period(), horizon - w);
    }
  }
  return total;
}

class PolicyMatrix : public ::testing::TestWithParam<core::PolicyKind> {
 protected:
  static void SetUpTestSuite() {
    trace::CoarseGenConfig gen;
    gen.duration = 6 * 3600.0;
    gen.start_hour = 9.0;
    pool_ = new std::vector<trace::CoarseTrace>(
        trace::generate_machine_pool(gen, 8, rng::Stream(314)));
  }
  static void TearDownTestSuite() {
    delete pool_;
    pool_ = nullptr;
  }
  static std::vector<trace::CoarseTrace>* pool_;
};

std::vector<trace::CoarseTrace>* PolicyMatrix::pool_ = nullptr;

TEST_P(PolicyMatrix, AllJobsCompleteAndAccountingIsConsistent) {
  cluster::ClusterConfig cfg;
  cfg.node_count = 8;
  cfg.policy = GetParam();
  cfg.randomize_placement = false;  // node i -> pool[i], capacity computable
  cluster::ClusterSim sim(cfg, *pool_, workload::default_burst_table(),
                          rng::Stream(7));
  for (int i = 0; i < 12; ++i) sim.submit(200.0);
  sim.run_until_all_complete(2e5);

  double demand = 0.0;
  for (const cluster::JobRecord& job : sim.jobs()) {
    EXPECT_EQ(job.state, cluster::JobState::Done);
    EXPECT_NEAR(job.remaining, 0.0, 1e-6);
    demand += job.cpu_demand;
    // State stopwatches cover the whole lifetime exactly.
    double total = 0.0;
    for (std::size_t s = 0; s < cluster::kJobStateCount; ++s) {
      total += job.state_time[s];
    }
    EXPECT_NEAR(total, job.turnaround(), 1e-6);
    // Causality.
    ASSERT_TRUE(job.first_start && job.completion);
    EXPECT_GE(*job.first_start, job.submit_time);
    EXPECT_GE(*job.completion, *job.first_start);
  }
  EXPECT_NEAR(sim.delivered_cpu(), demand, 1e-6);
}

TEST_P(PolicyMatrix, DeliveredWorkNeverExceedsLeftoverCapacity) {
  // Swept over occupancy limits: processor sharing must never manufacture
  // capacity (the multi-occupancy path once hid a lifetime bug — keep this
  // exercising it).
  for (std::size_t slots : {1u, 2u, 3u}) {
    cluster::ClusterConfig cfg;
    cfg.node_count = 8;
    cfg.policy = GetParam();
    cfg.randomize_placement = false;
    cfg.max_foreign_per_node = slots;
    cluster::ClusterSim sim(cfg, *pool_, workload::default_burst_table(),
                            rng::Stream(8));
    sim.set_completion_callback(
        [&sim](const cluster::JobRecord&) { sim.submit(100.0); });
    for (int i = 0; i < 16; ++i) sim.submit(100.0);
    const double horizon = 3600.0;
    sim.run_for(horizon);

    std::vector<std::size_t> assignment;
    for (std::size_t i = 0; i < cfg.node_count; ++i) {
      assignment.push_back(i % pool_->size());
    }
    EXPECT_LE(sim.delivered_cpu(),
              leftover_capacity(*pool_, assignment, horizon) + 1e-6)
        << "slots=" << slots;
  }
}

TEST_P(PolicyMatrix, MultiOccupancyCompletesAndConserves) {
  cluster::ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.policy = GetParam();
  cfg.max_foreign_per_node = 3;
  cluster::ClusterSim sim(cfg, *pool_, workload::default_burst_table(),
                          rng::Stream(12));
  for (int i = 0; i < 10; ++i) sim.submit(150.0);
  sim.run_until_all_complete(5e5);
  double demand = 0.0;
  for (const cluster::JobRecord& job : sim.jobs()) {
    EXPECT_EQ(job.state, cluster::JobState::Done);
    demand += job.cpu_demand;
  }
  EXPECT_NEAR(sim.delivered_cpu(), demand, 1e-6);
}

TEST_P(PolicyMatrix, NonLingerPoliciesNeverLinger) {
  cluster::ClusterConfig cfg;
  cfg.node_count = 8;
  cfg.policy = GetParam();
  cluster::ClusterSim sim(cfg, *pool_, workload::default_burst_table(),
                          rng::Stream(9));
  for (int i = 0; i < 12; ++i) sim.submit(150.0);
  sim.run_until_all_complete(2e5);

  const bool lingers =
      core::make_policy(GetParam())->allows_lingering();
  for (const cluster::JobRecord& job : sim.jobs()) {
    if (!lingers) {
      EXPECT_DOUBLE_EQ(job.time_in(cluster::JobState::Lingering), 0.0);
    }
  }
}

TEST_P(PolicyMatrix, ForegroundDelayBounded) {
  cluster::ClusterConfig cfg;
  cfg.node_count = 8;
  cfg.policy = GetParam();
  cluster::ClusterSim sim(cfg, *pool_, workload::default_burst_table(),
                          rng::Stream(10));
  for (int i = 0; i < 16; ++i) sim.submit(150.0);
  sim.run_until_all_complete(2e5);
  // Paper bound with a healthy margin: the calibrated LDR never exceeds ~1%.
  EXPECT_LT(sim.foreground_delay_ratio(), 0.015);
  EXPECT_GE(sim.foreground_delay_ratio(), 0.0);
}

TEST_P(PolicyMatrix, DeterministicAcrossRuns) {
  auto run = [&] {
    cluster::ClusterConfig cfg;
    cfg.node_count = 8;
    cfg.policy = GetParam();
    cluster::ClusterSim sim(cfg, *pool_, workload::default_burst_table(),
                            rng::Stream(11));
    for (int i = 0; i < 8; ++i) sim.submit(120.0);
    sim.run_until_all_complete(2e5);
    double last = 0.0;
    for (const auto& job : sim.jobs()) last = std::max(last, *job.completion);
    return last;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyMatrix, ::testing::ValuesIn(kAllPolicies),
    [](const ::testing::TestParamInfo<core::PolicyKind>& info) {
      std::string name(core::to_string(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- parallel cluster invariants ----------------------------------------

class WidthPolicyMatrix
    : public ::testing::TestWithParam<parallel::WidthPolicy> {};

TEST_P(WidthPolicyMatrix, JobsCompleteAndWorkIsConserved) {
  trace::CoarseGenConfig gen;
  gen.duration = 4 * 3600.0;
  gen.start_hour = 9.0;
  const auto pool = trace::generate_machine_pool(gen, 8, rng::Stream(21));

  parallel::ParallelClusterConfig cfg;
  cfg.node_count = 8;
  cfg.policy = GetParam();
  cfg.fixed_width = 8;
  parallel::ParallelClusterSim sim(cfg, pool,
                                   workload::default_burst_table(),
                                   rng::Stream(22));
  parallel::ParallelJobSpec spec;
  spec.total_work = 60.0;
  spec.bsp.granularity = 0.25;
  spec.max_width = 8;
  for (int i = 0; i < 6; ++i) sim.submit(spec);
  sim.run_until_all_complete(2e5);

  EXPECT_NEAR(sim.delivered_work(), 6 * 60.0, 1e-6);
  for (const auto& job : sim.jobs()) {
    ASSERT_TRUE(job.completion);
    EXPECT_GE(job.width, 1u);
    EXPECT_LE(job.width, 8u);
    EXPECT_LE(job.idle_at_dispatch, job.width);
    EXPECT_GE(job.queue_wait(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidthPolicies, WidthPolicyMatrix,
                         ::testing::Values(parallel::WidthPolicy::Reconfigure,
                                           parallel::WidthPolicy::FixedLinger,
                                           parallel::WidthPolicy::Hybrid),
                         [](const auto& info) {
                           std::string name(parallel::to_string(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ll
