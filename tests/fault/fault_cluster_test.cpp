#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster_sim.hpp"
#include "common/scenario_builders.hpp"
#include "parallel/parallel_cluster.hpp"
#include "verify/digest.hpp"
#include "verify/invariants.hpp"

namespace ll {
namespace {

using test_support::base_config;
using test_support::idle_pool;
using test_support::pattern_trace;
using test_support::table;

// A node crash re-queues the resident job and rolls its progress back to the
// last checkpoint (here: none, so to zero). One idle node, demand 100, a
// fixed crash at t=50 with a fixed 30 s downtime: the job loses the first
// 50 s of work and finishes the full demand after the node recovers at t=80.
TEST(FaultCluster, CrashRequeuesAndRollsBack) {
  auto pool = idle_pool();
  auto cfg = base_config(core::PolicyKind::LingerLonger, 1);
  cfg.faults.crash.arrivals = fault::ArrivalProcess::fixed({50.0});
  cfg.faults.crash.exponential_downtime = false;
  cfg.faults.crash.mean_downtime = 30.0;

  cluster::ClusterSim sim(cfg, pool, table(), rng::Stream(21));
  sim.submit(100.0);
  sim.run_until_all_complete();

  EXPECT_EQ(sim.crashes(), 1u);
  EXPECT_EQ(sim.restarts(), 1u);
  // The calibrated idle effective rate is ~0.99995, not exactly 1.
  EXPECT_NEAR(sim.work_lost(), 50.0, 0.1);
  EXPECT_NEAR(sim.delivered_cpu(), 100.0, 1e-6);

  const auto& job = sim.jobs().front();
  EXPECT_EQ(job.state, cluster::JobState::Done);
  ASSERT_TRUE(job.completion.has_value());
  EXPECT_NEAR(*job.completion, 180.0, 2.1);
  EXPECT_EQ(job.restarts, 1u);

  // The crash edge (Running -> Queued) must be legal per the verifier.
  verify::InvariantRegistry registry(verify::Mode::kAssert);
  verify::check_job_record(job, registry);
  EXPECT_EQ(registry.violations(), 0u);
}

// Periodic checkpointing bounds the crash loss to at most one interval of
// work plus the progress since the last completed write.
TEST(FaultCluster, CheckpointBoundsWorkLoss) {
  auto pool = idle_pool();
  auto cfg = base_config(core::PolicyKind::LingerLonger, 1);
  cfg.faults.crash.arrivals = fault::ArrivalProcess::fixed({50.0});
  cfg.faults.crash.exponential_downtime = false;
  cfg.faults.crash.mean_downtime = 30.0;
  cfg.checkpoint.interval = 20.0;

  cluster::ClusterSim sim(cfg, pool, table(), rng::Stream(22));
  sim.submit(100.0);
  sim.run_until_all_complete();

  EXPECT_EQ(sim.crashes(), 1u);
  EXPECT_GE(sim.checkpoints_taken(), 2u);
  EXPECT_GT(sim.work_lost(), 0.0);
  EXPECT_LT(sim.work_lost(), 20.0);
  EXPECT_NEAR(sim.delivered_cpu(), 100.0, 1e-6);
  const auto& job = sim.jobs().front();
  EXPECT_EQ(job.state, cluster::JobState::Done);
  EXPECT_GE(job.checkpoints, 2u);
  EXPECT_GT(job.time_in(cluster::JobState::Checkpointing), 0.0);
}

// A migration whose transfers keep dropping exhausts its retries, releases
// the reserved destination slot and re-queues the job (which then completes
// via a fresh placement). Reservation accounting must balance afterwards.
TEST(FaultCluster, LinkDropExhaustsRetriesAndReleasesReservation) {
  // Node 0: idle 4 s, then the owner returns for good -> IE evicts.
  // Node 1: busy 4 s, then idle for good -> the only migration target.
  std::vector<trace::CoarseTrace> pool{
      pattern_trace(".." + std::string(400, 'B')),
      pattern_trace("BB" + std::string(400, '.'))};
  auto cfg = base_config(core::PolicyKind::ImmediateEviction, 2);
  cfg.faults.link.drop_probability = 0.999;
  cfg.faults.link.max_retries = 2;
  cfg.faults.link.retry_backoff = 1.0;

  cluster::ClusterSim sim(cfg, pool, table(), rng::Stream(23));
  sim.submit(30.0);
  sim.run_until_all_complete();

  EXPECT_EQ(sim.migration_retries(), 2u);
  EXPECT_EQ(sim.migration_aborts(), 1u);
  EXPECT_GT(sim.work_lost(), 0.0);  // progress rolled back on the abort
  EXPECT_EQ(sim.inflight_migrations(), 0u);
  for (const auto& node : sim.node_snapshots()) {
    EXPECT_EQ(node.reserved, 0u);
  }
  EXPECT_EQ(sim.jobs().front().state, cluster::JobState::Done);

  verify::InvariantRegistry registry(verify::Mode::kAssert);
  verify::check_cluster_occupancy(sim, registry);
  for (const auto& job : sim.jobs()) verify::check_job_record(job, registry);
  EXPECT_EQ(registry.violations(), 0u);
}

// A reclamation storm forces the node non-idle: a lingering job crawls at
// the storm utilization instead of running free, so completion is delayed —
// but no work is ever lost (storms reclaim cycles, not state).
TEST(FaultCluster, StormDelaysCompletionWithoutLosingWork) {
  auto pool = idle_pool();
  auto run = [&](bool with_storm) {
    auto cfg = base_config(core::PolicyKind::LingerLonger, 1);
    if (with_storm) {
      cfg.faults.storm.arrivals = fault::ArrivalProcess::fixed({10.0});
      cfg.faults.storm.node_fraction = 1.0;
      cfg.faults.storm.duration = 50.0;
      cfg.faults.storm.utilization = 0.95;
    }
    cluster::ClusterSim sim(cfg, pool, table(), rng::Stream(24));
    sim.submit(40.0);
    sim.run_until_all_complete();
    EXPECT_EQ(sim.crashes(), 0u);
    EXPECT_DOUBLE_EQ(sim.work_lost(), 0.0);
    return *sim.jobs().front().completion;
  };
  const double clean = run(false);
  const double stormy = run(true);
  EXPECT_NEAR(clean, 40.0, 0.1);
  EXPECT_GT(stormy, clean + 5.0);
}

// A memory-pressure spike shrinks the donated page pool; the foreign job's
// resident set drops below its working set and progress degrades via the
// memory model until the spike decays.
TEST(FaultCluster, PressureSpikeSlowsForeignProgress) {
  auto pool = idle_pool();
  auto run = [&](bool with_pressure) {
    auto cfg = base_config(core::PolicyKind::LingerLonger, 1);
    if (with_pressure) {
      cfg.faults.pressure.arrivals = fault::ArrivalProcess::fixed({10.0});
      cfg.faults.pressure.node_fraction = 1.0;
      cfg.faults.pressure.duration = 100.0;
      cfg.faults.pressure.extra_kb = 61440;  // squeeze the 64 MiB node
    }
    cluster::ClusterSim sim(cfg, pool, table(), rng::Stream(25));
    sim.submit(40.0);
    sim.run_until_all_complete();
    EXPECT_DOUBLE_EQ(sim.work_lost(), 0.0);
    return *sim.jobs().front().completion;
  };
  const double clean = run(false);
  const double squeezed = run(true);
  EXPECT_GT(squeezed, clean + 0.5);
}

// The whole fault stack — crashes, storms, pressure, link drops and
// checkpointing at once — replays bit-for-bit under one seed.
TEST(FaultCluster, FullFaultPlanIsDeterministic) {
  std::vector<trace::CoarseTrace> pool{
      pattern_trace(".." + std::string(400, 'B'), 0.6),
      pattern_trace(std::string(400, '.'))};
  auto run = [&](verify::DigestObserver& digest) {
    auto cfg = base_config(core::PolicyKind::LingerLonger, 4);
    cfg.faults.crash.arrivals = fault::ArrivalProcess::exponential(1.0 / 150.0);
    cfg.faults.crash.mean_downtime = 40.0;
    cfg.faults.storm.arrivals = fault::ArrivalProcess::fixed({30.0});
    cfg.faults.storm.duration = 60.0;
    cfg.faults.pressure.arrivals = fault::ArrivalProcess::fixed({60.0});
    cfg.faults.pressure.duration = 80.0;
    cfg.faults.link.drop_probability = 0.3;
    cfg.checkpoint.interval = 25.0;
    cluster::ClusterSim sim(cfg, pool, table(), rng::Stream(26));
    sim.set_sim_observer(&digest);
    for (int i = 0; i < 6; ++i) sim.submit(50.0);
    sim.run_until_all_complete();
    sim.set_sim_observer(nullptr);

    verify::InvariantRegistry registry(verify::Mode::kAssert);
    verify::check_cluster_occupancy(sim, registry);
    for (const auto& job : sim.jobs()) verify::check_job_record(job, registry);

    struct Totals {
      double work_lost, delivered;
      std::size_t crashes, restarts, checkpoints, aborts;
    };
    return Totals{sim.work_lost(),     sim.delivered_cpu(), sim.crashes(),
                  sim.restarts(),      sim.checkpoints_taken(),
                  sim.migration_aborts()};
  };
  verify::DigestObserver a;
  verify::DigestObserver b;
  const auto ta = run(a);
  const auto tb = run(b);
  EXPECT_EQ(a.digest().value(), b.digest().value());
  EXPECT_EQ(a.events(), b.events());
  EXPECT_GT(a.events(), 0u);
  EXPECT_DOUBLE_EQ(ta.work_lost, tb.work_lost);
  EXPECT_DOUBLE_EQ(ta.delivered, tb.delivered);
  EXPECT_EQ(ta.crashes, tb.crashes);
  EXPECT_EQ(ta.restarts, tb.restarts);
  EXPECT_EQ(ta.checkpoints, tb.checkpoints);
  EXPECT_EQ(ta.aborts, tb.aborts);
}

// BSP runs checkpoint at barrier granularity: a member-node crash aborts the
// running phase, the job stalls until the node recovers (plus the restart
// delay), and only the aborted phase re-runs.
TEST(FaultParallel, CrashStallsPhaseUntilRecovery) {
  std::vector<trace::CoarseTrace> pool = idle_pool();
  auto run = [&](bool with_crash) {
    parallel::ParallelClusterConfig cfg;
    cfg.node_count = 2;
    cfg.policy = parallel::WidthPolicy::FixedLinger;
    cfg.fixed_width = 2;
    cfg.recruitment = test_support::kInstantRule;
    cfg.randomize_placement = false;
    if (with_crash) {
      cfg.faults.crash.arrivals = fault::ArrivalProcess::fixed({3.0});
      cfg.faults.crash.exponential_downtime = false;
      cfg.faults.crash.mean_downtime = 10.0;
    }
    parallel::ParallelClusterSim sim(cfg, pool, table(), rng::Stream(27));
    parallel::ParallelJobSpec spec;
    spec.total_work = 16.0;
    spec.bsp.granularity = 0.5;
    spec.max_width = 2;
    sim.submit(spec);
    sim.run_until_all_complete();
    if (with_crash) {
      EXPECT_EQ(sim.crashes(), 1u);
      EXPECT_GE(sim.restarts(), 1u);
      EXPECT_GE(sim.jobs().front().restarts, 1u);
    } else {
      EXPECT_EQ(sim.crashes(), 0u);
      EXPECT_EQ(sim.restarts(), 0u);
    }
    return *sim.jobs().front().completion;
  };
  const double clean = run(false);
  const double crashed = run(true);
  // Downtime (10 s) + restart delay dominate the re-run phase cost.
  EXPECT_GT(crashed, clean + 9.0);
  EXPECT_NEAR(run(true), crashed, 0.0);  // deterministic
}

}  // namespace
}  // namespace ll
