#include "fault/fault_spec.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace ll::fault {
namespace {

TEST(ArrivalProcess, DefaultIsEmptyAndDrawsNothing) {
  const ArrivalProcess p = ArrivalProcess::none();
  EXPECT_TRUE(p.empty());
  rng::Stream a(7);
  rng::Stream b(7);
  EXPECT_TRUE(p.draw(1000.0, a).empty());
  // Drawing from an empty process consumes no entropy.
  EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(ArrivalProcess, ExponentialDrawsSortedTimesWithinHorizon) {
  const ArrivalProcess p = ArrivalProcess::exponential(0.01);
  rng::Stream stream(11);
  const auto times = p.draw(10000.0, stream);
  ASSERT_FALSE(times.empty());
  double prev = 0.0;
  for (double t : times) {
    EXPECT_GE(t, prev);
    EXPECT_LT(t, 10000.0);
    prev = t;
  }
  // ~100 expected arrivals; a wide statistical guard.
  EXPECT_GT(times.size(), 40u);
  EXPECT_LT(times.size(), 250u);
}

TEST(ArrivalProcess, FixedTimesFilteredByHorizon) {
  const ArrivalProcess p = ArrivalProcess::fixed({5.0, 50.0, 500.0});
  rng::Stream stream(1);
  const auto times = p.draw(100.0, stream);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
  EXPECT_DOUBLE_EQ(times[1], 50.0);
}

TEST(ArrivalProcess, ValidationRejectsNonsense) {
  EXPECT_THROW(ArrivalProcess::exponential(0.0).validate("x"),
               std::invalid_argument);
  EXPECT_THROW(ArrivalProcess::exponential(-1.0).validate("x"),
               std::invalid_argument);
  EXPECT_THROW(ArrivalProcess::hyperexp2(1.5, 1.0, 1.0).validate("x"),
               std::invalid_argument);
  EXPECT_THROW(ArrivalProcess::fixed({-2.0}).validate("x"),
               std::invalid_argument);
  EXPECT_NO_THROW(ArrivalProcess::exponential(0.5).validate("x"));
  EXPECT_NO_THROW(ArrivalProcess::hyperexp2(0.3, 2.0, 0.1).validate("x"));
}

TEST(FaultSpec, EmptyMeansNoArrivalsAnywhereAndNoLinkDrops) {
  FaultSpec spec;
  EXPECT_TRUE(spec.empty());
  spec.link.drop_probability = 0.1;
  EXPECT_FALSE(spec.empty());
  spec.link.drop_probability = 0.0;
  spec.storm.arrivals = ArrivalProcess::fixed({10.0});
  EXPECT_FALSE(spec.empty());
}

TEST(FaultSpec, ValidateNamesTheBadField) {
  FaultSpec spec;
  spec.crash.arrivals = ArrivalProcess::exponential(0.01);
  spec.crash.mean_downtime = -1.0;
  try {
    spec.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("downtime"), std::string::npos)
        << e.what();
  }

  FaultSpec link_bad;
  link_bad.link.drop_probability = 1.0;  // must stay below 1
  EXPECT_THROW(link_bad.validate(), std::invalid_argument);

  FaultSpec storm_bad;
  storm_bad.storm.arrivals = ArrivalProcess::fixed({1.0});
  storm_bad.storm.node_fraction = 0.0;
  EXPECT_THROW(storm_bad.validate(), std::invalid_argument);

  FaultSpec ok;
  ok.crash.arrivals = ArrivalProcess::exponential(0.001);
  ok.link.drop_probability = 0.2;
  EXPECT_NO_THROW(ok.validate());
}

TEST(FaultSchedule, EmptySpecCompilesToEmptySchedule) {
  const FaultSchedule sched =
      FaultSchedule::compile(FaultSpec{}, 8, rng::Stream(3));
  EXPECT_TRUE(sched.empty());
  EXPECT_TRUE(sched.events().empty());
}

TEST(FaultSchedule, CompileIsDeterministicInSeed) {
  FaultSpec spec;
  spec.crash.arrivals = ArrivalProcess::exponential(1.0 / 600.0);
  spec.storm.arrivals = ArrivalProcess::hyperexp2(0.2, 1.0 / 200.0,
                                                  1.0 / 5000.0);
  spec.pressure.arrivals = ArrivalProcess::fixed({100.0, 9000.0});
  spec.horizon = 20000.0;

  const FaultSchedule a = FaultSchedule::compile(spec, 16, rng::Stream(42));
  const FaultSchedule b = FaultSchedule::compile(spec, 16, rng::Stream(42));
  const FaultSchedule c = FaultSchedule::compile(spec, 16, rng::Stream(43));
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].nodes, b.events()[i].nodes);
    EXPECT_DOUBLE_EQ(a.events()[i].duration, b.events()[i].duration);
  }
  // A different seed produces a different timeline.
  bool differs = a.events().size() != c.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].time != c.events()[i].time;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, TimelineSortedAndNodesInRange) {
  FaultSpec spec;
  spec.crash.arrivals = ArrivalProcess::exponential(1.0 / 300.0);
  spec.storm.arrivals = ArrivalProcess::exponential(1.0 / 2000.0);
  spec.storm.node_fraction = 0.5;
  spec.horizon = 20000.0;
  const FaultSchedule sched = FaultSchedule::compile(spec, 6, rng::Stream(9));
  ASSERT_FALSE(sched.empty());
  double prev = 0.0;
  for (const FaultEvent& ev : sched.events()) {
    EXPECT_GE(ev.time, prev);
    prev = ev.time;
    EXPECT_GT(ev.duration, 0.0);
    ASSERT_FALSE(ev.nodes.empty());
    std::size_t last = 0;
    for (std::size_t i = 0; i < ev.nodes.size(); ++i) {
      EXPECT_LT(ev.nodes[i], 6u);
      if (i > 0) {
        EXPECT_GT(ev.nodes[i], last);  // distinct, ascending
      }
      last = ev.nodes[i];
    }
    if (ev.kind == FaultKind::NodeCrash) {
      EXPECT_EQ(ev.nodes.size(), 1u);
    }
    if (ev.kind == FaultKind::Storm) {
      EXPECT_EQ(ev.nodes.size(), 3u);
    }
  }
}

TEST(FaultSchedule, CompileRejectsZeroNodes) {
  FaultSpec spec;
  spec.crash.arrivals = ArrivalProcess::fixed({1.0});
  EXPECT_THROW(FaultSchedule::compile(spec, 0, rng::Stream(1)),
               std::invalid_argument);
}

TEST(FaultSchedule, WriteTimelineRendersEventsAndLinkLine) {
  FaultSpec spec;
  spec.crash.arrivals = ArrivalProcess::fixed({12.5});
  spec.crash.exponential_downtime = false;
  spec.crash.mean_downtime = 30.0;
  spec.link.drop_probability = 0.25;
  const FaultSchedule sched = FaultSchedule::compile(spec, 4, rng::Stream(5));
  std::ostringstream out;
  sched.write_timeline(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("crash"), std::string::npos);
  EXPECT_NE(text.find("12.5"), std::string::npos);
  EXPECT_NE(text.find("30.0"), std::string::npos);
  EXPECT_NE(text.find("drop probability"), std::string::npos);
}

TEST(FaultKindNames, AreStable) {
  EXPECT_EQ(to_string(FaultKind::NodeCrash), "crash");
  EXPECT_EQ(to_string(FaultKind::Storm), "storm");
  EXPECT_EQ(to_string(FaultKind::Pressure), "pressure");
}

}  // namespace
}  // namespace ll::fault
