#include "fault/checkpoint.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ll::fault {
namespace {

TEST(CheckpointConfig, DisabledByDefault) {
  const CheckpointConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  CheckpointConfig on;
  on.interval = 600.0;
  EXPECT_TRUE(on.enabled());
}

TEST(CheckpointConfig, CostIsFixedPlusTransfer) {
  CheckpointConfig cfg;
  cfg.fixed_cost = 0.5;
  cfg.bandwidth_bps = 8e6;  // one byte per microsecond
  EXPECT_DOUBLE_EQ(cfg.cost(0), 0.5);
  EXPECT_DOUBLE_EQ(cfg.cost(1'000'000), 0.5 + 1.0);
  // Larger images cost strictly more.
  EXPECT_GT(cfg.cost(8ull << 20), cfg.cost(1ull << 20));
}

TEST(CheckpointConfig, ValidateRejectsNonsense) {
  CheckpointConfig negative_interval;
  negative_interval.interval = -1.0;
  EXPECT_THROW(negative_interval.validate(), std::invalid_argument);

  CheckpointConfig negative_fixed;
  negative_fixed.fixed_cost = -0.1;
  EXPECT_THROW(negative_fixed.validate(), std::invalid_argument);

  CheckpointConfig zero_bandwidth;
  zero_bandwidth.bandwidth_bps = 0.0;
  EXPECT_THROW(zero_bandwidth.validate(), std::invalid_argument);

  CheckpointConfig ok;
  ok.interval = 120.0;
  EXPECT_NO_THROW(ok.validate());
}

}  // namespace
}  // namespace ll::fault
