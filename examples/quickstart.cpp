/// \file quickstart.cpp
/// Five-minute tour of the Linger-Longer library:
///   1. synthesize a pool of workstation traces,
///   2. run one foreign-job workload through two scheduling policies,
///   3. compare throughput and owner impact.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "cluster/experiment.hpp"
#include "core/linger.hpp"
#include "util/table.hpp"

int main() {
  using namespace ll;

  // 1. A pool of synthetic workstation traces (the library ships a
  //    generator calibrated to the paper's trace statistics: ~46% of time
  //    non-idle, mostly at <10% CPU). One working day per machine.
  trace::CoarseGenConfig gen;
  gen.duration = 8 * 3600.0;
  gen.start_hour = 9.0;
  const auto pool = trace::generate_machine_pool(gen, 16, rng::Stream(1));
  const auto stats = trace::analyze_coarse(pool);
  std::printf("Trace pool: %.0f%% of time non-idle, mean CPU %.1f%%\n\n",
              stats.nonidle_fraction * 100.0, stats.mean_cpu_overall * 100.0);

  // 2. 32 batch jobs of 600 CPU-seconds on a 16-node cluster, submitted as
  //    one family at t=0, under Linger-Longer and Immediate-Eviction.
  util::Table table({"policy", "avg job (s)", "family (s)", "migrations",
                     "owner delay"});
  for (auto policy : {core::PolicyKind::LingerLonger,
                      core::PolicyKind::ImmediateEviction}) {
    cluster::ExperimentConfig cfg;
    cfg.cluster.node_count = 16;
    cfg.cluster.policy = policy;
    cfg.workload = cluster::WorkloadSpec{32, 600.0};
    cfg.seed = 42;
    const auto report =
        cluster::run_open(cfg, pool, workload::default_burst_table());
    table.add_row({std::string(core::to_string(policy)),
                   util::fixed(report.avg_completion, 0),
                   util::fixed(report.family_time, 0),
                   std::to_string(report.migrations),
                   util::percent(report.foreground_delay, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Lingering runs jobs at starvation priority on busy nodes too, so the\n"
      "family finishes sooner while the owners barely notice.\n");
  return 0;
}
