/// \file parallel_linger.cpp
/// Parallel jobs on a partially busy cluster: how much does lingering on
/// non-idle nodes cost a barrier-synchronized application, and when does it
/// beat shrinking the job (reconfiguration)? Exercises the BSP model, the
/// sor/water/fft application profiles, and the reconfiguration comparison
/// (paper §5).
///
///   ./build/examples/parallel_linger --util=0.2 --cluster=32

#include <cstdio>
#include <vector>

#include "parallel/apps.hpp"
#include "parallel/reconfig.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("parallel_linger",
                    "Lingering vs reconfiguration for parallel jobs.");
  auto util_flag = flags.add_double("util", 0.2, "owner load on busy nodes");
  auto cluster = flags.add_int("cluster", 32, "cluster size");
  auto work = flags.add_double("work", 38.4, "job size in CPU-seconds");
  auto seed = flags.add_uint64("seed", 7, "RNG seed");
  flags.parse(argc, argv);

  const auto& table = workload::default_burst_table();
  rng::Stream master(*seed);

  // --- 1. Application slowdown when some of its nodes are busy -----------
  std::printf("Slowdown of 8-process applications vs number of busy nodes "
              "(owner load %.0f%%):\n",
              *util_flag * 100);
  util::Table slow({"app", "0 busy", "1", "2", "4", "8"});
  for (const parallel::AppModel& app : parallel::all_app_models(8)) {
    std::vector<std::string> row{std::string(app.name)};
    for (std::size_t busy : {0u, 1u, 2u, 4u, 8u}) {
      const double s = parallel::app_slowdown(app, busy, *util_flag, table,
                                              master.fork(app.name, busy));
      row.push_back(util::fixed(s, 2));
    }
    slow.add_row(row);
  }
  std::printf("%s\n", slow.render().c_str());

  // --- 2. Linger-Longer vs reconfiguration -------------------------------
  parallel::ReconfigScenario scenario;
  scenario.cluster_nodes = static_cast<std::size_t>(*cluster);
  scenario.nonidle_util = *util_flag;
  scenario.total_work = *work;
  scenario.bsp.granularity = 0.5;

  std::printf("Completion time (s) of a %.1f cpu-s job on a %lld-node "
              "cluster:\n",
              *work, static_cast<long long>(*cluster));
  util::Table cmp({"idle nodes", "LL-32", "LL-16", "LL-8", "reconfig"});
  for (std::size_t idle = scenario.cluster_nodes;; idle -= 4) {
    std::vector<std::string> row{std::to_string(idle)};
    for (std::size_t width : {32u, 16u, 8u}) {
      if (width > scenario.cluster_nodes) {
        row.push_back("-");
        continue;
      }
      const double t = parallel::ll_completion(scenario, width, idle, table,
                                               master.fork("ll", idle * 64 + width));
      row.push_back(util::fixed(t, 2));
    }
    row.push_back(util::fixed(
        parallel::reconfig_completion(scenario, idle, table,
                                      master.fork("rec", idle)),
        2));
    cmp.add_row(row);
    if (idle == 0) break;
  }
  std::printf("%s\n", cmp.render().c_str());
  std::printf(
      "Reading the table: while enough idle nodes exist the policies tie;\n"
      "as owners return, reconfiguration halves the job's width at every\n"
      "power-of-two boundary while Linger-Longer degrades smoothly by\n"
      "stealing fine-grain idle cycles on the busy nodes.\n");
  return 0;
}
