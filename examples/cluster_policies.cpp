/// \file cluster_policies.cpp
/// Full cluster-scheduling comparison on a configurable cluster: all four
/// policies (LL, LF, IE, PM), open-family and closed-throughput modes, with
/// per-state time breakdowns — the programmatic equivalent of the paper's
/// §4.2 evaluation, on your own parameters.
///
///   ./build/examples/cluster_policies --nodes=64 --jobs=128 --demand=600
///   ./build/examples/cluster_policies --help

#include <cstdio>

#include "cluster/experiment.hpp"
#include "core/linger.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("cluster_policies",
                    "Compare LL/LF/IE/PM on a simulated shared cluster.");
  auto nodes = flags.add_int("nodes", 64, "cluster size");
  auto jobs = flags.add_int("jobs", 128, "foreign jobs submitted at t=0");
  auto demand = flags.add_double("demand", 600.0, "CPU-seconds per job");
  auto machines = flags.add_int("machines", 32, "distinct machine traces");
  auto hours = flags.add_double("trace-hours", 24.0, "trace length per machine");
  auto duration = flags.add_double("closed-duration", 3600.0,
                                   "seconds simulated for the throughput run");
  auto pause = flags.add_double("pause-time", 60.0, "PM grace period (s)");
  auto seed = flags.add_uint64("seed", 42, "master RNG seed");
  flags.parse(argc, argv);

  trace::CoarseGenConfig gen;
  gen.duration = *hours * 3600.0;
  gen.start_hour = *hours < 24.0 ? 9.0 : 0.0;
  const auto pool = trace::generate_machine_pool(
      gen, static_cast<std::size_t>(*machines), rng::Stream(*seed));
  const auto stats = trace::analyze_coarse(pool);
  std::printf("pool: %zu machines x %.0f h, non-idle %.0f%%, mean cpu %.1f%% "
              "(idle %.1f%%, non-idle %.1f%%)\n\n",
              pool.size(), *hours, stats.nonidle_fraction * 100,
              stats.mean_cpu_overall * 100, stats.mean_cpu_idle * 100,
              stats.mean_cpu_nonidle * 100);

  util::Table open_table({"policy", "avg job (s)", "variation", "family (s)",
                          "migrations", "owner delay"});
  util::Table closed_table(
      {"policy", "throughput (cpu-s/s)", "completions", "owner delay"});
  util::Table breakdown(
      {"policy", "queued", "running", "lingering", "paused", "migrating"});

  for (auto policy :
       {core::PolicyKind::LingerLonger, core::PolicyKind::LingerForever,
        core::PolicyKind::ImmediateEviction, core::PolicyKind::PauseAndMigrate}) {
    cluster::ExperimentConfig cfg;
    cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
    cfg.cluster.policy = policy;
    cfg.cluster.policy_params.pause_time = *pause;
    cfg.workload =
        cluster::WorkloadSpec{static_cast<std::size_t>(*jobs), *demand};
    cfg.seed = *seed;

    const auto open =
        cluster::run_open(cfg, pool, workload::default_burst_table());
    open_table.add_row({std::string(core::to_string(policy)),
                        util::fixed(open.avg_completion, 0),
                        util::percent(open.variation, 1),
                        util::fixed(open.family_time, 0),
                        std::to_string(open.migrations),
                        util::percent(open.foreground_delay, 2)});
    breakdown.add_row({std::string(core::to_string(policy)),
                       util::fixed(open.avg_queued, 0),
                       util::fixed(open.avg_running, 0),
                       util::fixed(open.avg_lingering, 0),
                       util::fixed(open.avg_paused, 0),
                       util::fixed(open.avg_migrating, 0)});

    const auto closed = cluster::run_closed(
        cfg, pool, workload::default_burst_table(), *duration);
    closed_table.add_row({std::string(core::to_string(policy)),
                          util::fixed(closed.throughput, 1),
                          std::to_string(closed.completed),
                          util::percent(closed.foreground_delay, 2)});
  }

  std::printf("Open family run (%lld jobs x %.0f cpu-s):\n%s\n",
              static_cast<long long>(*jobs), *demand,
              open_table.render().c_str());
  std::printf("Average time per job in each state (s):\n%s\n",
              breakdown.render().c_str());
  std::printf("Closed system (%lld jobs held for %.0f s):\n%s",
              static_cast<long long>(*jobs), *duration,
              closed_table.render().c_str());
  return 0;
}
