/// \file trace_workbench.cpp
/// Workload-characterization walkthrough (paper §3): generate coarse and
/// fine traces, run the recruitment rule and the two-level analysis
/// pipeline, fit per-utilization hyperexponential burst models, and persist
/// everything to disk in the library's text trace formats.
///
///   ./build/examples/trace_workbench --out-dir=/tmp/ll-traces

#include <cstdio>
#include <filesystem>

#include "trace/coarse_analysis.hpp"
#include "trace/coarse_generator.hpp"
#include "trace/trace_io.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/fine_generator.hpp"
#include "workload/fit.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("trace_workbench",
                    "Generate, analyze, and persist workstation traces.");
  auto out_dir = flags.add_string("out-dir", "", "write traces here (optional)");
  auto machines = flags.add_int("machines", 8, "machines to synthesize");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  flags.parse(argc, argv);

  // --- coarse level -------------------------------------------------------
  trace::CoarseGenConfig gen;  // one full day per machine
  const auto pool = trace::generate_machine_pool(
      gen, static_cast<std::size_t>(*machines), rng::Stream(*seed));
  const auto stats = trace::analyze_coarse(pool);
  std::printf("Coarse level (%lld machines x 1 day, 2 s samples):\n",
              static_cast<long long>(*machines));
  std::printf("  non-idle fraction            %5.1f%%   (paper: ~46%%)\n",
              stats.nonidle_fraction * 100);
  std::printf("  non-idle time below 10%% cpu %5.1f%%   (paper: ~76%%)\n",
              stats.nonidle_below_10pct * 100);
  std::printf("  mean cpu: overall %.1f%%, idle %.1f%%, non-idle %.1f%%\n",
              stats.mean_cpu_overall * 100, stats.mean_cpu_idle * 100,
              stats.mean_cpu_nonidle * 100);
  std::printf("  mean episode: idle %.0f s, non-idle %.0f s\n\n",
              stats.mean_idle_episode, stats.mean_nonidle_episode);

  const auto mem = trace::memory_availability(pool);
  std::printf("Free memory (64 MB machines):\n");
  for (double mb : {8.0, 10.0, 14.0, 20.0, 32.0}) {
    std::printf("  >= %4.0f MB free for %5.1f%% of time\n", mb,
                trace::fraction_with_at_least(mem.all_kb, mb * 1024) * 100);
  }

  // --- fine level ---------------------------------------------------------
  std::printf("\nFine level: dispatch-trace synthesis + 21-level H2 re-fit\n");
  const auto& truth = workload::default_burst_table();
  util::Table fit_table({"target util", "run mean (ms)", "fitted (ms)",
                         "idle mean (ms)", "fitted (ms)"});
  std::vector<trace::FineTrace> fines;
  for (double u : {0.1, 0.3, 0.5, 0.7}) {
    fines.push_back(
        workload::generate_fine_trace(truth, u, 4000.0, rng::Stream(*seed + 1)));
    const auto analysis = workload::analyze_fine_trace(fines.back());
    const auto fitted = analysis.to_table();
    const auto level =
        static_cast<std::size_t>(u * (workload::kUtilizationLevels - 1) + 0.5);
    fit_table.add_row({util::percent(u, 0),
                       util::fixed(truth.level(level).run_mean * 1e3, 1),
                       util::fixed(fitted.level(level).run_mean * 1e3, 1),
                       util::fixed(truth.level(level).idle_mean * 1e3, 1),
                       util::fixed(fitted.level(level).idle_mean * 1e3, 1)});
  }
  std::printf("%s", fit_table.render().c_str());

  // --- persistence --------------------------------------------------------
  if (!out_dir->empty()) {
    std::filesystem::create_directories(*out_dir);
    for (std::size_t m = 0; m < pool.size(); ++m) {
      trace::save_coarse(pool[m],
                         *out_dir + "/machine" + std::to_string(m) + ".coarse");
    }
    for (std::size_t f = 0; f < fines.size(); ++f) {
      trace::save_fine(fines[f],
                       *out_dir + "/dispatch" + std::to_string(f) + ".fine");
    }
    // Round-trip sanity: reload the first coarse trace.
    const auto back = trace::load_coarse(*out_dir + "/machine0.coarse");
    std::printf("\nwrote %zu coarse + %zu fine traces to %s "
                "(round-trip check: %zu samples)\n",
                pool.size(), fines.size(), out_dir->c_str(), back.size());
  }
  return 0;
}
